package main

import (
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestRunSmoke runs the lower-bound exploration at two small sizes and
// asserts the table header, the per-size rows and the optional Lemma 16 and
// trace outputs.
func TestRunSmoke(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-n", "100,1000", "-seeds", "2", "-delta", "16", "-trace"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{
		"knowledge-graph min T", "100", "1000",
		"Lemma 16 with Δ=16", "T=",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestRunDefaultsOmitExtras checks that -delta and -trace output stay off by
// default.
func TestRunDefaultsOmitExtras(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-n", "100", "-seeds", "1"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(out, "Lemma 16") {
		t.Errorf("Lemma 16 printed without -delta:\n%s", out)
	}
	if strings.Contains(out, "T=") {
		t.Errorf("feasibility trace printed without -trace:\n%s", out)
	}
}

// TestRunRejectsBadInput pins the error paths: an unparsable size and an
// unknown flag.
func TestRunRejectsBadInput(t *testing.T) {
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-n", "12,notanumber"})
	}); err == nil {
		t.Error("unparsable size accepted")
	}
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-bogus"})
	}); err == nil {
		t.Error("unknown flag accepted")
	}
}
