// Command lowerbound explores the round-complexity lower bounds of the paper:
// the knowledge-graph feasibility bound of Theorem 3 and the log n / log Δ
// bound of Lemma 16.
//
// Example:
//
//	lowerbound -n 1000,100000,10000000 -seeds 5
//	lowerbound -n 1000000 -delta 256
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	sizes := fs.String("n", "1000,10000,100000,1000000", "comma-separated network sizes")
	seeds := fs.Int("seeds", 3, "number of random draws per size")
	delta := fs.Int("delta", 0, "if set, also print the Lemma 16 bound for this Δ")
	trace := fs.Bool("trace", false, "print the per-T feasibility trace for the first seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizeList, err := cliutil.ParseSizes(*sizes)
	if err != nil {
		return err
	}

	fmt.Printf("%-10s %-18s %-22s\n", "n", "0.99*log2 log2 n", "knowledge-graph min T")
	for _, n := range sizeList {
		sum := 0.0
		var firstTrace []repro.Feasibility
		for _, seed := range cliutil.Seeds(*seeds) {
			minT, tr := repro.LowerBoundTrace(n, seed)
			sum += float64(minT)
			if seed == 1 {
				firstTrace = tr
			}
		}
		mean := sum / float64(*seeds)
		fmt.Printf("%-10d %-18.2f %-22.1f\n", n, repro.TheoreticalLowerBound(n), mean)
		if *trace {
			for _, f := range firstTrace {
				fmt.Printf("    T=%d ecc=%d reach=%d possible=%v\n", f.T, f.Eccentricity, f.Reach, f.Possible)
			}
		}
		if *delta > 1 {
			fmt.Printf("    Lemma 16 with Δ=%d: %.2f rounds\n", *delta, repro.DeltaLowerBound(n, *delta))
		}
	}
	return nil
}
