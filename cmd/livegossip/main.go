// Command livegossip spins up N in-process nodes — one goroutine each,
// exchanging wire-encoded phone-call frames over a pluggable transport — and
// reports convergence time and message counts (internal/live).
//
// Two modes:
//
//	lockstep     barrier-synchronized rounds on the channel mesh, running any
//	             of the closed broadcast algorithms unchanged; bit-identical
//	             to the simulator engine (the internal/live conformance
//	             guarantee), so mid-run churn and model loss behave exactly
//	             as in cmd/gossipsim.
//	free         free-running local round clocks with bounded skew: the
//	             steppable gossip protocols under transport-level frame loss,
//	             latency and jitter, convergence detected by the completion
//	             monitor. Churn, loss and rumor injection come from a JSON
//	             scenario spec (-spec).
//
// Example:
//
//	livegossip -mode lockstep -algo cluster2 -n 1000 -seed 7
//	livegossip -mode free -n 1000 -drop 0.05 -rounds 150
//	livegossip -mode free -spec examples/churn/spec.json
//	livegossip -mode free -n 200 -transport udp
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "livegossip:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("livegossip", flag.ContinueOnError)
	mode := fs.String("mode", "free", "execution mode: lockstep or free")
	n := fs.Int("n", 1000, "number of nodes (one goroutine each)")
	seed := fs.Uint64("seed", 1, "execution seed")
	algo := fs.String("algo", "", "algorithm: lockstep takes the closed algorithms (cluster2, clusterpushpull, push-pull, ...), free takes push, pull, push-pull")
	rounds := fs.Int("rounds", 0, "free-running per-node round budget (0 = derived from n)")
	skew := fs.Int("skew", 0, "free-running max rounds ahead of the slowest node (0 = default)")
	transport := fs.String("transport", "chan", "transport: chan (in-process mesh) or udp (loopback sockets, free mode)")
	drop := fs.Float64("drop", 0, "transport frame-loss probability (free mode, chan transport)")
	dropSeed := fs.Uint64("dropseed", 99, "seed for the deterministic drop/jitter injection")
	latency := fs.Duration("latency", 0, "per-frame delivery latency (free mode, chan transport)")
	jitter := fs.Duration("jitter", 0, "additional per-frame jitter bound (free mode, chan transport)")
	spec := fs.String("spec", "", "JSON scenario spec: n, rounds, algorithm and the churn/loss/rumor timeline (free mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	lo := harness.LiveOptions{
		Transport: *transport,
		Drop:      *drop, DropSeed: *dropSeed,
		Latency: *latency, Jitter: *jitter,
		MaxSkew: *skew, Rounds: *rounds,
	}
	switch *mode {
	case "lockstep":
		if *spec != "" {
			return fmt.Errorf("-spec drives free-running mode; lock-step timelines go through cmd/gossipsim-style options")
		}
		return runLockStep(*algo, *n, *seed, lo)
	case "free":
		return runFree(*algo, *n, *seed, *spec, fs, lo)
	default:
		return fmt.Errorf("unknown mode %q (have lockstep, free)", *mode)
	}
}

// runLockStep executes a closed algorithm on the barrier-synchronized live
// runtime and prints its (engine-identical) complexity report.
func runLockStep(algo string, n int, seed uint64, lo harness.LiveOptions) error {
	if algo == "" {
		algo = string(harness.AlgoCluster2)
	}
	start := time.Now()
	res, err := harness.RunLockStep(harness.Algorithm(algo), n, seed, harness.Options{}, lo)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Printf("live lock-step     %s over %s transport (%d node goroutines)\n", res.Algorithm, transportName(lo), n)
	fmt.Printf("nodes              %d (live %d)\n", res.N, res.Live)
	fmt.Printf("informed           %d (all informed: %v)\n", res.Informed, res.AllInformed)
	fmt.Printf("rounds             %d\n", res.Rounds)
	fmt.Printf("messages           %d payload + %d control (%.2f per node)\n", res.Messages, res.ControlMessages, res.MessagesPerNode)
	fmt.Printf("bits               %d\n", res.Bits)
	fmt.Printf("max comms/round Δ  %d\n", res.MaxCommsPerRound)
	fmt.Printf("wall time          %v\n", wall.Round(time.Millisecond))
	fmt.Printf("conformance        bit-identical to the simulator engine (internal/live gate)\n")
	if len(res.Phases) > 0 {
		fmt.Printf("\n%-28s %8s %12s %14s\n", "phase", "rounds", "messages", "bits")
		for _, p := range res.Phases {
			fmt.Printf("%-28s %8d %12d %14d\n", p.Name, p.Rounds, p.Messages, p.Bits)
		}
	}
	return nil
}

// runFree executes the free-running workload, optionally shaped by a JSON
// scenario spec.
func runFree(algo string, n int, seed uint64, specPath string, fs *flag.FlagSet, lo harness.LiveOptions) error {
	var events []scenario.Event
	algorithm := scenario.Algorithm(algo)
	if specPath != "" {
		sp, err := scenario.LoadSpec(specPath)
		if err != nil {
			return err
		}
		sc, cfg, err := sp.Build()
		if err != nil {
			return err
		}
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["n"] {
			// The spec's event node indexes are relative to its own n;
			// resizing underneath them would silently invalidate the
			// timeline.
			return fmt.Errorf("-n conflicts with -spec (the spec fixes n=%d)", sc.N)
		}
		n = sc.N
		events = sc.Events
		if algorithm == "" {
			algorithm = sc.Algorithm
		}
		if lo.Rounds <= 0 {
			lo.Rounds = sc.Rounds
		}
		lo.PayloadBits = cfg.PayloadBits
		if !set["seed"] {
			seed = cfg.Seed
		}
	}

	rep, err := harness.RunFreeRunning(n, seed, algorithm, events, lo)
	if err != nil {
		return err
	}
	res := rep.Trace("free-"+string(orPushPull(algorithm)), seed)

	fmt.Printf("live free-running  %s over %s transport (%d node goroutines, max skew %d)\n",
		orPushPull(algorithm), transportName(lo), n, maxSkewShown(lo))
	fmt.Printf("nodes              %d (live %d)\n", rep.N, rep.Live)
	if rep.AllInformed {
		fmt.Printf("converged          all %d live nodes informed at frontier round %d\n", rep.Live, rep.CompletionFrontier)
	} else {
		fmt.Printf("converged          NO: %d/%d live nodes informed within %d rounds\n", rep.Informed, rep.Live, rep.Rounds)
	}
	fmt.Printf("local rounds       budget %d, furthest clock %d\n", rep.Rounds, rep.MaxRound)
	fmt.Printf("messages           %d payload + %d control (%.2f per node)\n", rep.Messages, rep.ControlMessages, res.MessagesPerNode)
	fmt.Printf("bits               %d\n", rep.Bits)
	fmt.Printf("max comms/round Δ  %d\n", rep.MaxComms)
	fmt.Printf("frame drops        %d\n", rep.Drops)
	fmt.Printf("wall time          %v\n", rep.Wall.Round(time.Millisecond))
	if rep.UnfiredEvents > 0 {
		fmt.Printf("warning            %d timeline event(s) never fired (past the final frontier)\n", rep.UnfiredEvents)
	}
	if rep.IgnoredEvents > 0 {
		fmt.Printf("warning            %d timeline event(s) not honored by this transport\n", rep.IgnoredEvents)
	}
	return nil
}

func orPushPull(a scenario.Algorithm) scenario.Algorithm {
	if a == "" {
		return scenario.AlgoPushPull
	}
	return a
}

func transportName(lo harness.LiveOptions) string {
	if lo.Transport == "" {
		return "chan"
	}
	return lo.Transport
}

func maxSkewShown(lo harness.LiveOptions) int {
	if lo.MaxSkew < 1 {
		return 3
	}
	return lo.MaxSkew
}
