// Command livegossip spins up N in-process nodes — one goroutine each,
// exchanging wire-encoded phone-call frames over a pluggable transport — and
// reports convergence time and message counts (internal/live behind
// repro.Run's live engines).
//
// Two modes:
//
//	lockstep     barrier-synchronized rounds on the channel mesh, running any
//	             of the closed broadcast algorithms unchanged; bit-identical
//	             to the simulator engine (the internal/live conformance
//	             guarantee), so mid-run churn and model loss behave exactly
//	             as in cmd/gossipsim.
//	free         free-running local round clocks with bounded skew: the
//	             steppable gossip protocols under transport-level frame loss,
//	             latency and jitter, convergence detected by the completion
//	             monitor. Churn, loss and rumor injection come from a JSON
//	             scenario spec (-spec), or -rumors switches the run into soak
//	             mode: gossip as a service, continuously injecting rumors at
//	             -rate per frontier round through a bounded -inflight window
//	             with backpressure and converged-rumor GC.
//
// Example:
//
//	livegossip -mode lockstep -algo cluster2 -n 1000 -seed 7
//	livegossip -mode free -n 1000 -drop 0.05 -rounds 150
//	livegossip -mode free -spec examples/churn/spec.json
//	livegossip -mode free -n 200 -transport udp
//	livegossip -mode free -n 64 -rumors 4096 -rate 64 -inflight 1024 -drop 0.02
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro"
	"repro/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "livegossip:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("livegossip", flag.ContinueOnError)
	mode := fs.String("mode", "free", "execution mode: lockstep or free")
	n := fs.Int("n", 1000, "number of nodes (one goroutine each)")
	seed := fs.Uint64("seed", 1, "execution seed")
	algo := fs.String("algo", "", "algorithm: lockstep takes the closed algorithms (cluster2, clusterpushpull, push-pull, ...), free takes push, pull, push-pull")
	rounds := fs.Int("rounds", 0, "free-running per-node round budget (0 = derived from n)")
	skew := fs.Int("skew", 0, "free-running max rounds ahead of the slowest node (0 = default)")
	transport := fs.String("transport", "chan", "transport: chan (in-process mesh) or udp (loopback sockets, free mode)")
	drop := fs.Float64("drop", 0, "transport frame-loss probability (free mode, chan transport)")
	dropSeed := fs.Uint64("dropseed", 99, "seed for the deterministic drop/jitter injection")
	latency := fs.Duration("latency", 0, "per-frame delivery latency (free mode, chan transport)")
	jitter := fs.Duration("jitter", 0, "additional per-frame jitter bound (free mode, chan transport)")
	spec := fs.String("spec", "", "JSON scenario spec: n, rounds, algorithm and the churn/loss/rumor timeline (free mode)")
	rumors := fs.Int("rumors", 0, "soak mode: continuously inject this many rumors through the free-running runtime (free mode)")
	rate := fs.Float64("rate", 0, "soak injection rate in rumors per frontier round (0 = 1, needs -rumors)")
	inflight := fs.Int("inflight", 0, "soak in-flight window: max concurrently active rumors before injection stalls (0 = min(rumors, 1024))")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address while the run executes (e.g. 127.0.0.1:9797)")
	metricsLinger := fs.Duration("metrics-linger", 0, "keep the -metrics-addr endpoint up this long after the run finishes, so scrapers catch the final state")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var ms *metricsServer
	if *metricsAddr != "" {
		var err error
		if ms, err = newMetricsServer(*metricsAddr); err != nil {
			return err
		}
		fmt.Printf("metrics            serving /metrics and /debug/pprof on http://%s\n", ms.addr())
		defer ms.shutdown(*metricsLinger)
	} else if *metricsLinger != 0 {
		return fmt.Errorf("-metrics-linger needs -metrics-addr")
	}

	switch *mode {
	case "lockstep":
		if *spec != "" {
			return fmt.Errorf("-spec drives free-running mode; lock-step timelines go through cmd/gossipsim-style options")
		}
		return runLockStep(*algo, *n, *seed, repro.Transport(*transport), ms,
			repro.WithFrameLoss(*drop, *dropSeed), repro.WithLinkDelay(*latency, *jitter))
	case "free":
		return runFree(freeArgs{
			algo: *algo, n: *n, seed: *seed, spec: *spec, set: set,
			transport: repro.Transport(*transport),
			rounds:    *rounds, skew: *skew,
			drop: *drop, dropSeed: *dropSeed, latency: *latency, jitter: *jitter,
			rumors: *rumors, rate: *rate, inflight: *inflight,
			metrics: ms,
		})
	default:
		return fmt.Errorf("unknown mode %q (have lockstep, free)", *mode)
	}
}

// metricsServer serves a shared MetricsRegistry as a Prometheus /metrics
// endpoint plus the net/http/pprof profiling handlers, on a listener bound
// synchronously (so address errors surface before the run starts).
type metricsServer struct {
	reg *repro.MetricsRegistry
	ln  net.Listener
	srv *http.Server
}

// newMetricsServer binds addr and starts serving in the background.
func newMetricsServer(addr string) (*metricsServer, error) {
	reg := repro.NewMetricsRegistry()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics endpoint: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ms := &metricsServer{reg: reg, ln: ln, srv: &http.Server{Handler: mux}}
	go ms.srv.Serve(ln)
	return ms, nil
}

// addr returns the bound address (resolving a requested :0 port).
func (ms *metricsServer) addr() string { return ms.ln.Addr().String() }

// option returns the telemetry option wiring the run to this endpoint's
// registry, or a no-op when no endpoint is up.
func (ms *metricsServer) option() repro.Option {
	if ms == nil {
		return repro.Option{}
	}
	return repro.WithTelemetry(ms.reg)
}

// shutdown optionally lingers (final-state scrapes), then closes the server.
func (ms *metricsServer) shutdown(linger time.Duration) {
	if linger > 0 {
		fmt.Printf("metrics            lingering %v for final scrapes\n", linger)
		time.Sleep(linger)
	}
	ms.srv.Close()
}

// runLockStep executes a closed algorithm on the barrier-synchronized live
// runtime and prints its (engine-identical) complexity report.
func runLockStep(algoName string, n int, seed uint64, transport repro.Transport, ms *metricsServer, shaping ...repro.Option) error {
	// The shaping options carry the free-running-only flags (-drop, -latency,
	// -jitter) so a lock-step invocation that sets them is rejected by the
	// API's validation instead of silently ignored.
	opts := append([]repro.Option{repro.OnLockStep(transport), repro.WithSeed(seed), ms.option()}, shaping...)
	if algoName != "" {
		algo, err := repro.ParseAlgorithm(algoName)
		if err != nil {
			return err
		}
		opts = append(opts, repro.WithAlgorithm(algo))
	}
	start := time.Now()
	rep, err := repro.Run(context.Background(), n, opts...)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Printf("live lock-step     %s over %s transport (%d node goroutines)\n",
		rep.Algorithm, transportName(transport), n)
	cliutil.PrintResult(os.Stdout, rep.Result)
	fmt.Printf("wall time          %v\n", wall.Round(time.Millisecond))
	fmt.Printf("conformance        bit-identical to the simulator engine (internal/live gate)\n")
	cliutil.PrintPhases(os.Stdout, rep.Phases)
	return nil
}

// freeArgs carries the free-running flag values (with the explicitly-set
// flag names, so unset flags defer to the spec).
type freeArgs struct {
	algo      string
	n         int
	seed      uint64
	spec      string
	set       map[string]bool
	transport repro.Transport
	rounds    int
	skew      int
	drop      float64
	dropSeed  uint64
	latency   time.Duration
	jitter    time.Duration
	rumors    int
	rate      float64
	inflight  int
	metrics   *metricsServer
}

// runFree executes the free-running workload, optionally shaped by a JSON
// scenario spec.
func runFree(a freeArgs) error {
	n := a.n
	var opts []repro.Option
	if a.spec != "" {
		// The spec fixes n (its event node indexes are relative to its own
		// size); explicit flags layer over its scalar fields.
		if a.set["n"] {
			return fmt.Errorf("-n conflicts with -spec (the spec fixes its own n)")
		}
		n = 0
		opts = append(opts, repro.WithScenarioFile(a.spec))
	}
	opts = append(opts,
		repro.OnFreeRunning(a.skew, a.rounds),
		repro.WithTransport(a.transport),
		repro.WithFrameLoss(a.drop, a.dropSeed),
		repro.WithLinkDelay(a.latency, a.jitter),
		a.metrics.option(),
	)
	if a.spec == "" || a.set["seed"] {
		opts = append(opts, repro.WithSeed(a.seed))
	}
	if a.algo != "" {
		opts = append(opts, repro.WithAlgorithm(repro.Algorithm(a.algo)))
	}
	if a.rumors > 0 {
		opts = append(opts, repro.WithRumorStream(a.rate, a.rumors, a.inflight))
	} else if a.set["rate"] || a.set["inflight"] {
		return fmt.Errorf("-rate and -inflight shape the -rumors soak stream")
	}

	rep, err := repro.Run(context.Background(), n, opts...)
	if err != nil {
		return err
	}

	fmt.Printf("live free-running  %s over %s transport (%d node goroutines%s)\n",
		rep.Algorithm, transportName(a.transport), rep.N, skewShown(a.skew))
	fmt.Printf("nodes              %d (live %d)\n", rep.N, rep.Live)
	if rep.AllInformed {
		fmt.Printf("converged          all %d live nodes informed at frontier round %d\n", rep.Live, rep.CompletionRound)
	} else {
		fmt.Printf("converged          NO: %d/%d live nodes informed (furthest clock %d)\n", rep.Informed, rep.Live, rep.Rounds)
	}
	fmt.Printf("local rounds       furthest clock %d\n", rep.Rounds)
	fmt.Printf("messages           %d payload + %d control (%.2f per node)\n", rep.Messages, rep.ControlMessages, rep.MessagesPerNode)
	fmt.Printf("bits               %d\n", rep.Bits)
	fmt.Printf("max comms/round Δ  %d\n", rep.MaxCommsPerRound)
	if a.rumors > 0 {
		fmt.Printf("rumor stream       %d injected, %d converged, %d expired by GC, %d still active\n",
			rep.RumorsInjected, rep.RumorsConverged, rep.RumorsExpired, rep.RumorsActive)
		fmt.Printf("backpressure       injection stalled on a full window for %d monitor tick(s)\n", rep.InjectionStalls)
	}
	fmt.Printf("frame drops        %d\n", rep.Drops)
	if rep.SendFailures > 0 {
		fmt.Printf("send failures      %d (kernel refused writes on %d node socket(s))\n",
			rep.SendFailures, len(rep.NodeSendFailures))
	}
	fmt.Printf("wall time          %v\n", rep.Wall.Round(time.Millisecond))
	if rep.UnfiredEvents > 0 {
		fmt.Printf("warning            %d timeline event(s) never fired (past the final frontier)\n", rep.UnfiredEvents)
	}
	if rep.IgnoredEvents > 0 {
		fmt.Printf("warning            %d timeline event(s) not honored by this transport\n", rep.IgnoredEvents)
	}
	// The partial report above always prints in full; only after it is on
	// stdout does a blown round budget turn into a nonzero exit.
	if !rep.AllInformed {
		return fmt.Errorf("convergence budget exhausted: %d/%d live nodes informed after %d local rounds",
			rep.Informed, rep.Live, rep.Rounds)
	}
	return nil
}

func transportName(t repro.Transport) string {
	if t == "" {
		return "chan"
	}
	return string(t)
}

func skewShown(skew int) string {
	if skew < 1 {
		skew = 3
	}
	return fmt.Sprintf(", max skew %d", skew)
}
