package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestRunLockStepSmoke runs a small closed algorithm end to end on the live
// runtime and asserts the report markers.
func TestRunLockStepSmoke(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-mode", "lockstep", "-algo", "cluster2", "-n", "300", "-seed", "3"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{
		"live lock-step     cluster2", "(300 node goroutines)",
		"all informed: true", "conformance        bit-identical", "phase",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestRunFreeSmoke runs the free-running mode under 5% frame loss.
func TestRunFreeSmoke(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-mode", "free", "-n", "400", "-drop", "0.05", "-seed", "2"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{
		"live free-running  push-pull", "converged          all 400 live nodes informed",
		"frame drops", "wall time",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestRunFreeBudgetExhaustedPrintsReportThenFails pins the exit contract: a
// free run whose round budget cannot reach convergence still prints its full
// partial report, and run() returns a budget-exhausted error afterwards.
func TestRunFreeBudgetExhaustedPrintsReportThenFails(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-mode", "free", "-n", "400", "-rounds", "2", "-seed", "2"})
	})
	if err == nil || !strings.Contains(err.Error(), "convergence budget exhausted") {
		t.Fatalf("err = %v, want budget-exhausted", err)
	}
	for _, marker := range []string{
		"converged          NO:", "messages", "frame drops", "wall time",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("partial report missing %q before the error:\n%s", marker, out)
		}
	}
}

// TestRunFreeFromSpec drives churn and rumor injection from a JSON scenario
// spec.
func TestRunFreeFromSpec(t *testing.T) {
	// "workers" is a simulator knob shared specs may carry; the free-running
	// engine must ignore it rather than reject the spec.
	const spec = `{
	  "name": "live-smoke",
	  "n": 300,
	  "rounds": 120,
	  "algorithm": "push-pull",
	  "workers": 4,
	  "seed": 5,
	  "events": [
	    {"type": "inject", "round": 1, "node": 0, "rumor": 0},
	    {"type": "crash", "round": 4, "count": 20, "pick_seed": 11},
	    {"type": "join", "round": 12, "count": 20, "pick_seed": 11}
	  ]
	}`
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-mode", "free", "-spec", path})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "(300 node goroutines") {
		t.Errorf("spec n not applied:\n%s", out)
	}
	if !strings.Contains(out, "converged          all") {
		t.Errorf("spec run did not converge:\n%s", out)
	}
	// An explicit -n conflicts with the spec (its event node indexes are
	// relative to the spec's own n).
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-mode", "free", "-spec", path, "-n", "50"})
	}); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("-n alongside -spec accepted (err=%v)", err)
	}
}

// TestMetricsEndpoint runs free mode with a metrics endpoint on an ephemeral
// port and scrapes it: /metrics must serve parseable Prometheus text carrying
// the run's series (counters survive the run, so a post-run scrape sees the
// final state), and the pprof mux must answer.
func TestMetricsEndpoint(t *testing.T) {
	ms, err := newMetricsServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.shutdown(0)
	out, err := testutil.CaptureStdout(t, func() error {
		return runFree(freeArgs{n: 400, seed: 2, drop: 0.05, dropSeed: 99, metrics: ms})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "converged          all 400 live nodes informed") {
		t.Fatalf("instrumented run did not converge:\n%s", out)
	}

	resp, err := http.Get("http://" + ms.addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, marker := range []string{
		"# TYPE repro_messages_total counter",
		`repro_messages_total{algo="push-pull",engine="free-running"} `,
		"repro_informed_nodes ",
		"repro_frontier_round ",
	} {
		if !strings.Contains(text, marker) {
			t.Errorf("exposition missing %q:\n%s", marker, text)
		}
	}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
	}

	// The pprof mux shares the listener.
	pp, err := http.Get("http://" + ms.addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status %d", pp.StatusCode)
	}
}

// TestMetricsFlagValidation pins the flag contract: a bad address fails
// before the run, and -metrics-linger without an endpoint is rejected.
func TestMetricsFlagValidation(t *testing.T) {
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-mode", "free", "-n", "50", "-metrics-addr", "256.0.0.1:bogus"})
	}); err == nil || !strings.Contains(err.Error(), "metrics endpoint") {
		t.Errorf("bad metrics address accepted (err=%v)", err)
	}
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-mode", "free", "-n", "50", "-metrics-linger", "5s"})
	}); err == nil || !strings.Contains(err.Error(), "-metrics-addr") {
		t.Errorf("-metrics-linger without -metrics-addr accepted (err=%v)", err)
	}
}

// TestRunRejectsBadInput pins the error paths: unknown mode and transport,
// UDP under lock-step, a lossy mesh under lock-step, a bad spec path, a spec
// in lock-step mode, and unknown algorithms in both modes.
func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-mode", "bogus"},
		{"-mode", "free", "-transport", "bogus"},
		{"-mode", "lockstep", "-transport", "udp", "-n", "50"},
		{"-mode", "lockstep", "-drop", "0.5", "-n", "50"},
		{"-mode", "free", "-spec", "/nonexistent/spec.json"},
		{"-mode", "lockstep", "-spec", "whatever.json"},
		{"-mode", "free", "-algo", "no-such-proto", "-n", "50"},
		{"-mode", "lockstep", "-algo", "no-such-algo", "-n", "50"},
		{"-bogusflag"},
	}
	for _, args := range cases {
		if _, err := testutil.CaptureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
