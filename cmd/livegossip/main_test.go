package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestRunLockStepSmoke runs a small closed algorithm end to end on the live
// runtime and asserts the report markers.
func TestRunLockStepSmoke(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-mode", "lockstep", "-algo", "cluster2", "-n", "300", "-seed", "3"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{
		"live lock-step     cluster2", "(300 node goroutines)",
		"all informed: true", "conformance        bit-identical", "phase",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestRunFreeSmoke runs the free-running mode under 5% frame loss.
func TestRunFreeSmoke(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-mode", "free", "-n", "400", "-drop", "0.05", "-seed", "2"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{
		"live free-running  push-pull", "converged          all 400 live nodes informed",
		"frame drops", "wall time",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestRunFreeFromSpec drives churn and rumor injection from a JSON scenario
// spec.
func TestRunFreeFromSpec(t *testing.T) {
	// "workers" is a simulator knob shared specs may carry; the free-running
	// engine must ignore it rather than reject the spec.
	const spec = `{
	  "name": "live-smoke",
	  "n": 300,
	  "rounds": 120,
	  "algorithm": "push-pull",
	  "workers": 4,
	  "seed": 5,
	  "events": [
	    {"type": "inject", "round": 1, "node": 0, "rumor": 0},
	    {"type": "crash", "round": 4, "count": 20, "pick_seed": 11},
	    {"type": "join", "round": 12, "count": 20, "pick_seed": 11}
	  ]
	}`
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-mode", "free", "-spec", path})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "(300 node goroutines") {
		t.Errorf("spec n not applied:\n%s", out)
	}
	if !strings.Contains(out, "converged          all") {
		t.Errorf("spec run did not converge:\n%s", out)
	}
	// An explicit -n conflicts with the spec (its event node indexes are
	// relative to the spec's own n).
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-mode", "free", "-spec", path, "-n", "50"})
	}); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("-n alongside -spec accepted (err=%v)", err)
	}
}

// TestRunRejectsBadInput pins the error paths: unknown mode and transport,
// UDP under lock-step, a lossy mesh under lock-step, a bad spec path, a spec
// in lock-step mode, and unknown algorithms in both modes.
func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-mode", "bogus"},
		{"-mode", "free", "-transport", "bogus"},
		{"-mode", "lockstep", "-transport", "udp", "-n", "50"},
		{"-mode", "lockstep", "-drop", "0.5", "-n", "50"},
		{"-mode", "free", "-spec", "/nonexistent/spec.json"},
		{"-mode", "lockstep", "-spec", "whatever.json"},
		{"-mode", "free", "-algo", "no-such-proto", "-n", "50"},
		{"-mode", "lockstep", "-algo", "no-such-algo", "-n", "50"},
		{"-bogusflag"},
	}
	for _, args := range cases {
		if _, err := testutil.CaptureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
