// Command gossipnode runs ONE gossip node as its own OS process — the
// multi-process deployment the in-process meshes simulate. Each process owns
// one UDP socket carrying both membership RPCs (Kademlia-style discovery,
// internal/membership) and gossip frames (internal/live wire codec); peers
// are found through the routing table, never through a shared node list.
//
// All processes of one deployment agree on (-n, -seed, -expect): that pair
// derives the identical node-ID directory everywhere, so the only runtime
// knowledge a process needs is its own index and one bootstrap address.
// The seed process (index 0 by convention) just listens:
//
//	gossipnode -n 5 -index 0 -bind :4001 -announce node0:4001 -inject 1
//
// every other process joins through it and free-runs to convergence:
//
//	gossipnode -n 5 -index 3 -bind :4001 -announce node3:4001 -bootstrap node0:4001
//
// The process exits 0 once its node held every -expect rumor (and lingered
// -linger rounds so stragglers could still pull from it); a run that
// exhausts -rounds first prints its full report and then exits nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/live"
	"repro/internal/membership"
	"repro/internal/phonecall"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gossipnode:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("gossipnode", flag.ContinueOnError)
	n := fs.Int("n", 0, "deployment size: total nodes across all processes (required, shared)")
	index := fs.Int("index", -1, "this process's node index in [0,n) (required)")
	seed := fs.Uint64("seed", 1, "shared execution seed (defines the ID directory and contact sequence)")
	bind := fs.String("bind", "0.0.0.0:4001", "UDP listen address for gossip + membership")
	announce := fs.String("announce", "", "address peers reach this node at (default: derived from -bind; set it whenever the bind host is not what peers see)")
	bootstrap := fs.String("bootstrap", "", "seed node address to join through (empty = this IS the seed: just listen)")
	bootTimeout := fs.Duration("bootstrap-timeout", 60*time.Second, "give up joining after this long")
	algo := fs.String("algo", "", "gossip protocol: push, pull, push-pull (default push-pull, shared)")
	rounds := fs.Int("rounds", 0, "local round budget (0 = derived from n)")
	interval := fs.Duration("interval", 20*time.Millisecond, "local round pace")
	linger := fs.Int("linger", 0, "rounds to keep gossiping after convergence (0 = default)")
	inject := fs.Uint64("inject", 0, "rumor bitmask seeded at this node (usually nonzero on exactly one process)")
	expect := fs.Uint64("expect", 1, "rumor bitmask the deployment spreads; convergence = holding all of it (shared)")
	k := fs.Int("k", 0, "membership bucket capacity / lookup width (0 = default)")
	alpha := fs.Int("alpha", 0, "membership lookup parallelism (0 = default)")
	rpcTimeout := fs.Duration("rpc-timeout", 0, "membership per-attempt RPC timeout (0 = default)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics on this address while running")
	verbose := fs.Bool("v", false, "log membership and convergence progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("-n is required (>= 2, shared across the deployment)")
	}
	if *index < 0 || *index >= *n {
		return fmt.Errorf("-index is required (in [0,%d))", *n)
	}
	budget := *rounds
	if budget == 0 {
		// Generous: O(log n) spreading plus headroom for discovery warmup and
		// container start skew.
		budget = 200
		for m := *n; m > 1; m /= 2 {
			budget += 40
		}
	}
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}

	reg := telemetry.NewRegistry()
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			reg.WritePrometheus(w)
		})
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(out, "metrics            serving /metrics on http://%s\n", ln.Addr())
	}

	// The shared directory every process derives identically — IDs only, no
	// addresses. Addresses are what the membership layer discovers.
	pnet, err := phonecall.New(phonecall.Config{N: *n, Seed: *seed, Workers: 1})
	if err != nil {
		return err
	}
	tr, err := live.NewPeerTransport(live.PeerTransportConfig{
		N: *n, Self: *index, IDs: live.PeerIDs(pnet),
		Membership: membership.Config{
			Bind:       *bind,
			Announce:   *announce,
			K:          *k,
			Alpha:      *alpha,
			RPCTimeout: *rpcTimeout,
			Telemetry:  reg,
			Logf:       logf,
		},
	})
	if err != nil {
		return err
	}
	defer tr.Close()
	self := tr.Membership().Self()
	fmt.Fprintf(out, "gossipnode         node %d/%d, id %016x\n", *index, *n, uint64(self.ID))
	fmt.Fprintf(out, "listening          %s (announcing %s)\n", tr.Membership().BindAddr(), self.Addr)

	if *bootstrap != "" {
		ctx, cancel := context.WithTimeout(context.Background(), *bootTimeout)
		err := tr.Membership().Bootstrap(ctx, *bootstrap)
		cancel()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "bootstrap          joined via %s (%d contacts in table)\n",
			*bootstrap, tr.Membership().Table().Len())
	} else {
		fmt.Fprintf(out, "bootstrap          none: acting as the deployment's seed node\n")
	}

	pn, err := live.NewPeerNode(live.PeerConfig{
		N: *n, Index: *index, Seed: *seed,
		Rounds:    budget,
		Interval:  *interval,
		Linger:    *linger,
		Algorithm: scenario.Algorithm(*algo),
		Inject:    *inject,
		Expect:    *expect,
		Transport: tr,
		Telemetry: reg,
		Logf:      logf,
	})
	if err != nil {
		return err
	}
	rep, runErr := pn.Run(context.Background())

	// The report always prints in full — converged or not — before any error
	// decides the exit code.
	algoName := *algo
	if algoName == "" {
		algoName = string(scenario.AlgoPushPull)
	}
	fmt.Fprintf(out, "gossip             %s, %d local rounds run of %d budgeted (%v pace)\n",
		algoName, rep.RoundsRun, rep.Rounds, *interval)
	if rep.Converged {
		fmt.Fprintf(out, "converged          YES at local round %d (held %#x)\n", rep.InformedAt, rep.Held)
	} else {
		fmt.Fprintf(out, "converged          NO: held %#x of expected %#x\n", rep.Held, *expect)
	}
	fmt.Fprintf(out, "messages           %d payload + %d control\n", rep.Messages, rep.ControlMessages)
	fmt.Fprintf(out, "bits               %d\n", rep.Bits)
	fmt.Fprintf(out, "max comms/round Δ  %d\n", rep.MaxComms)
	fmt.Fprintf(out, "discovery          %d routing-table contacts, %d sends dropped on table misses\n",
		rep.TableContacts, rep.SendMisses)
	if rep.SendFailures > 0 {
		fmt.Fprintf(out, "send failures      %d kernel-refused writes\n", rep.SendFailures)
	}
	fmt.Fprintf(out, "wall time          %v\n", rep.Wall.Round(time.Millisecond))
	if runErr != nil {
		return runErr
	}
	if !rep.Converged {
		return fmt.Errorf("convergence budget exhausted: held %#x of expected %#x after %d rounds", rep.Held, *expect, rep.RoundsRun)
	}
	return nil
}
