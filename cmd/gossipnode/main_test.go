package main

import (
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
)

// freeUDPPorts reserves count distinct loopback UDP ports and releases them
// (the tiny reuse race is acceptable in a test).
func freeUDPPorts(t *testing.T, count int) []int {
	t.Helper()
	conns := make([]*net.UDPConn, count)
	ports := make([]int, count)
	for i := range conns {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		ports[i] = c.LocalAddr().(*net.UDPAddr).Port
	}
	for _, c := range conns {
		c.Close()
	}
	return ports
}

// TestDeploymentConverges drives five full gossipnode stacks — separate
// sockets, separate routing tables, nothing shared but flags — through the
// same run() the binary executes. Four join through the seed's address alone;
// all five must converge the rumor injected at node 0 and exit cleanly.
func TestDeploymentConverges(t *testing.T) {
	const n = 5
	ports := freeUDPPorts(t, n)
	seedAddr := fmt.Sprintf("127.0.0.1:%d", ports[0])

	outs := make([]*os.File, n)
	paths := make([]string, n)
	for i := range outs {
		f, err := os.CreateTemp(t.TempDir(), "gossipnode-*.log")
		if err != nil {
			t.Fatal(err)
		}
		outs[i], paths[i] = f, f.Name()
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Processes start in arbitrary order (a joiner's first ping can race
		// the seed's bind and be lost), so the RPC timeout is short — a lost
		// bootstrap cycle costs ~150ms — and the quiet window is long enough
		// (500 rounds × 2ms = 1s) that the deployment outlives the recovery.
		args := []string{
			"-n", fmt.Sprint(n),
			"-index", fmt.Sprint(i),
			"-seed", "7",
			"-bind", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-interval", "2ms",
			"-linger", "500",
			"-rounds", "5000",
			"-rpc-timeout", "50ms",
		}
		if i == 0 {
			args = append(args, "-inject", "1")
		} else {
			args = append(args, "-bootstrap", seedAddr)
		}
		wg.Add(1)
		go func(i int, args []string) {
			defer wg.Done()
			errs[i] = run(args, outs[i])
		}(i, args)
	}
	wg.Wait()

	failed := false
	for i := 0; i < n; i++ {
		outs[i].Close()
		log, _ := os.ReadFile(paths[i])
		if errs[i] != nil {
			t.Errorf("node %d: %v", i, errs[i])
			failed = true
			continue
		}
		if !strings.Contains(string(log), "converged          YES") {
			t.Errorf("node %d report lacks convergence", i)
			failed = true
		}
	}
	if failed {
		for i := 0; i < n; i++ {
			log, _ := os.ReadFile(paths[i])
			t.Logf("---- node %d ----\n%s", i, log)
		}
	}
}

// TestBudgetExhaustedPrintsReportThenFails pins the exit contract: a node
// that cannot converge (it is the only process of a 2-node deployment and
// holds nothing) still prints its full report, and run() returns the
// budget-exhausted error afterwards.
func TestBudgetExhaustedPrintsReportThenFails(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "gossipnode-*.log")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ports := freeUDPPorts(t, 1)
	err = run([]string{
		"-n", "2", "-index", "0",
		"-bind", fmt.Sprintf("127.0.0.1:%d", ports[0]),
		"-rounds", "5", "-interval", "1ms",
	}, f)
	if err == nil || !strings.Contains(err.Error(), "convergence budget exhausted") {
		t.Fatalf("err = %v, want budget-exhausted", err)
	}
	log, _ := os.ReadFile(f.Name())
	for _, want := range []string{"converged          NO", "messages", "wall time"} {
		if !strings.Contains(string(log), want) {
			t.Errorf("report missing %q before the error:\n%s", want, log)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for _, args := range [][]string{
		{},                         // no -n
		{"-n", "5"},                // no -index
		{"-n", "5", "-index", "9"}, // index out of range
		{"-n", "1", "-index", "0"}, // mesh too small
		{"-n", "5", "-index", "0", "-expect", "0"}, // empty expectation
	} {
		if err := run(args, devnull); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}
