// Command scenario runs a dynamic-network scenario from a JSON spec file
// (timed crash waves, rejoins, per-call loss, and multi-rumor injection over
// one of the steppable gossip protocols — see internal/scenario for the spec
// format) and prints a per-phase trace of how the rumors spread through the
// churn.
//
// Example:
//
//	go run ./cmd/scenario -spec examples/churn/spec.json
//	go run ./cmd/scenario -spec spec.json -seed 7 -workers 4
//
// Executions are exactly reproducible from (spec, seed) and bit-identical
// for any -workers value.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to a JSON scenario spec (required)")
	seed := fs.Uint64("seed", 0, "override the spec's execution seed")
	workers := fs.Int("workers", 0, "engine shards per round (0 = spec value or GOMAXPROCS; results are identical for any value)")
	algo := fs.String("algo", "", "override the spec's algorithm (push, pull, push-pull)")
	topology := fs.String("topology", "", "JSON topology spec attributing the nodes (sized to the spec's n)")
	policyPath := fs.String("policy", "", "JSON peer-selection policy over the -topology attributes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}

	// Spec first, explicit flags layered over it.
	opts := []repro.Option{repro.WithScenarioFile(*specPath)}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			opts = append(opts, repro.WithSeed(*seed))
		}
	})
	if *workers > 0 {
		opts = append(opts, repro.WithWorkers(*workers))
	}
	if *algo != "" {
		opts = append(opts, repro.WithAlgorithm(repro.Algorithm(*algo)))
	}
	opts = append(opts, cliutil.PolicyOptions(*topology, *policyPath)...)

	rep, err := repro.Run(context.Background(), 0, opts...)
	if err != nil {
		return err
	}
	render(os.Stdout, rep)
	return nil
}

// render prints the per-phase trace and the final per-rumor outcomes.
func render(w *os.File, rep repro.Report) {
	name := rep.Scenario
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(w, "scenario %q  n=%d  rounds=%d  algorithm=%s  seed=%d\n\n",
		name, rep.N, rep.Rounds, rep.Algorithm, rep.Seed)

	fmt.Fprintf(w, "%-10s %7s %12s %14s %6s  %s\n", "rounds", "live", "messages", "bits", "maxΔ", "informed")
	for _, p := range rep.ScenarioPhases {
		if len(p.Events) > 0 {
			fmt.Fprintf(w, "event @%d: %s\n", p.FromRound, strings.Join(p.Events, "; "))
		}
		span := fmt.Sprintf("[%d,%d]", p.FromRound, p.ToRound)
		var informed []string
		for _, rc := range p.Informed {
			frac := 0.0
			if p.Live > 0 {
				frac = float64(rc.LiveInformed) / float64(p.Live)
			}
			informed = append(informed, fmt.Sprintf("r%d: %d (%.1f%%)", rc.Rumor, rc.LiveInformed, 100*frac))
		}
		fmt.Fprintf(w, "%-10s %7d %12d %14d %6d  %s\n",
			span, p.Live, p.Messages, p.Bits, p.MaxComms, strings.Join(informed, "  "))
	}

	fmt.Fprintf(w, "\nfinal: live=%d  messages=%d (+%d control)  bits=%d  msgs/node=%.2f  maxΔ=%d\n",
		rep.Live, rep.Messages, rep.ControlMessages, rep.Bits, rep.MessagesPerNode, rep.MaxCommsPerRound)
	for _, ro := range rep.Rumors {
		completed := "never completed"
		if ro.CompletionRound > 0 {
			completed = fmt.Sprintf("completed at round %d", ro.CompletionRound)
		}
		fmt.Fprintf(w, "rumor %d (injected round %d): %d/%d live informed (%.1f%%), %s\n",
			ro.Rumor, ro.InjectRound, ro.LiveInformed, rep.Live, 100*ro.LiveFraction, completed)
	}
}
