// Command scenario runs a dynamic-network scenario from a JSON spec file
// (see internal/scenario: timed crash waves, rejoins, per-call loss, and
// multi-rumor injection over one of the steppable gossip protocols) and
// prints a per-phase trace of how the rumors spread through the churn.
//
// Example:
//
//	go run ./cmd/scenario -spec examples/churn/spec.json
//	go run ./cmd/scenario -spec spec.json -seed 7 -workers 4
//
// Executions are exactly reproducible from (spec, seed) and bit-identical
// for any -workers value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to a JSON scenario spec (required)")
	seed := fs.Uint64("seed", 0, "override the spec's execution seed")
	workers := fs.Int("workers", 0, "engine shards per round (0 = spec value or GOMAXPROCS; results are identical for any value)")
	algo := fs.String("algo", "", "override the spec's algorithm (push, pull, push-pull)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}

	spec, err := scenario.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	sc, cfg, err := spec.Build()
	if err != nil {
		return err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			cfg.Seed = *seed
		}
	})
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *algo != "" {
		sc.Algorithm = scenario.Algorithm(*algo)
		if err := sc.Validate(); err != nil {
			return err
		}
	}

	res, err := scenario.Run(sc, cfg)
	if err != nil {
		return err
	}
	render(os.Stdout, res)
	return nil
}

// render prints the per-phase trace and the final per-rumor outcomes.
func render(w *os.File, res scenario.Result) {
	name := res.Scenario
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(w, "scenario %q  n=%d  rounds=%d  algorithm=%s  seed=%d\n\n",
		name, res.N, res.Rounds, res.Algorithm, res.Seed)

	fmt.Fprintf(w, "%-10s %7s %12s %14s %6s  %s\n", "rounds", "live", "messages", "bits", "maxΔ", "informed")
	for _, p := range res.Phases {
		if len(p.Events) > 0 {
			fmt.Fprintf(w, "event @%d: %s\n", p.FromRound, strings.Join(p.Events, "; "))
		}
		span := fmt.Sprintf("[%d,%d]", p.FromRound, p.ToRound)
		var informed []string
		for _, rc := range p.Informed {
			frac := 0.0
			if p.Live > 0 {
				frac = float64(rc.LiveInformed) / float64(p.Live)
			}
			informed = append(informed, fmt.Sprintf("r%d: %d (%.1f%%)", rc.Rumor, rc.LiveInformed, 100*frac))
		}
		fmt.Fprintf(w, "%-10s %7d %12d %14d %6d  %s\n",
			span, p.Live, p.Messages, p.Bits, p.MaxComms, strings.Join(informed, "  "))
	}

	fmt.Fprintf(w, "\nfinal: live=%d  messages=%d (+%d control)  bits=%d  msgs/node=%.2f  maxΔ=%d\n",
		res.Live, res.Messages, res.ControlMessages, res.Bits, res.MessagesPerNode, res.MaxCommsPerRound)
	for _, ro := range res.Rumors {
		completed := "never completed"
		if ro.CompletionRound > 0 {
			completed = fmt.Sprintf("completed at round %d", ro.CompletionRound)
		}
		fmt.Fprintf(w, "rumor %d (injected round %d): %d/%d live informed (%.1f%%), %s\n",
			ro.Rumor, ro.InjectRound, ro.LiveInformed, res.Live, 100*ro.LiveFraction, completed)
	}
}
