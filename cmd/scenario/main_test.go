package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// tinySpec is a complete dynamic-network spec small enough for a smoke test:
// one rumor, a crash wave, a rejoin and a loss phase over 500 nodes.
const tinySpec = `{
  "name": "smoke",
  "n": 500,
  "rounds": 16,
  "algorithm": "push-pull",
  "seed": 3,
  "events": [
    {"type": "inject", "round": 1, "node": 0, "rumor": 0},
    {"type": "loss", "round": 2, "rate": 0.1, "seed": 7},
    {"type": "crash", "round": 5, "count": 50, "pick_seed": 11},
    {"type": "join", "round": 10, "count": 20, "pick_seed": 11}
  ]
}`

// TestRunSpecSmoke runs the tiny spec end to end and asserts the per-phase
// trace markers.
func TestRunSpecSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-spec", path, "-workers", "2"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{
		`scenario "smoke"`, "event @5: crash 50 nodes", "event @10: join 20 nodes",
		"final:", "rumor 0 (injected round 1)",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestRunAlgoOverride checks the -algo flag replaces the spec's protocol.
func TestRunAlgoOverride(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-spec", path, "-algo", "pull"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "algorithm=pull") {
		t.Errorf("algorithm override not applied:\n%s", out)
	}
}

// TestRunRejectsBadInput pins the error paths: a missing -spec flag, a
// nonexistent file and an unknown algorithm override.
func TestRunRejectsBadInput(t *testing.T) {
	if _, err := testutil.CaptureStdout(t, func() error { return run(nil) }); err == nil {
		t.Error("missing -spec accepted")
	}
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-spec", "/nonexistent/spec.json"})
	}); err == nil {
		t.Error("nonexistent spec accepted")
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-spec", path, "-algo", "no-such-proto"})
	}); err == nil {
		t.Error("unknown algorithm override accepted")
	}
}

// zoneSpec schedules a zone outage and heal, which need a -topology.
const zoneSpec = `{
  "name": "zones",
  "n": 300,
  "rounds": 20,
  "algorithm": "push-pull",
  "seed": 5,
  "events": [
    {"type": "inject", "round": 1, "node": 0, "rumor": 0},
    {"type": "zone-outage", "round": 4, "zone": 1},
    {"type": "zone-heal", "round": 9, "zone": 1}
  ]
}`

// TestRunTopologyFlags runs a zone-outage scenario under -topology/-policy
// and pins that zone events without a topology are rejected.
func TestRunTopologyFlags(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	topoPath := filepath.Join(dir, "topo.json")
	polPath := filepath.Join(dir, "policy.json")
	for path, data := range map[string]string{
		specPath: zoneSpec,
		topoPath: `{"generator":"zones","zones":3}`,
		polPath:  `{"mode":"permissive","weights":{"same_zone":2}}`,
	} {
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-spec", specPath, "-topology", topoPath, "-policy", polPath})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{"event @4: zone 1 outage", "event @9: zone 1 heals", "rumor 0 (injected round 1)"} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}

	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-spec", specPath})
	}); err == nil {
		t.Error("zone events without a topology accepted")
	}
}
