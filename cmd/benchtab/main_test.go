package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestRunExperimentTable regenerates one experiment table on a tiny sweep
// and asserts the rendered markers.
func TestRunExperimentTable(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-experiment", "E1", "-sizes", "500", "-seeds", "1"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{"E1", "round complexity", "cluster2", "log2 n"} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestRunEngineBenchJSON exercises the -json mode on a small network and
// validates the emitted schema.
func TestRunEngineBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-json", "-benchn", "2000", "-out", path})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var report struct {
		GoMaxProcs int `json:"gomaxprocs"`
		Results    []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("stdout is not the JSON report: %v\n%s", err, out)
	}
	names := make(map[string]bool)
	for _, r := range report.Results {
		names[r.Name] = true
		if r.NsPerOp <= 0 {
			t.Errorf("%s has non-positive ns/op", r.Name)
		}
	}
	for _, want := range []string{
		"EngineRound", "BroadcastCluster2", "ScenarioChurn",
		"PolicySelect", "RoutingLookup", "MembershipRPC",
	} {
		if !names[want] {
			t.Errorf("report missing %q: %v", want, names)
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("-out file not written: %v", err)
	}
}

// TestRunRejectsMixedFlags pins the mode separation: experiment flags with
// -json (and vice versa) are an error, not silently ignored.
func TestRunRejectsMixedFlags(t *testing.T) {
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-json", "-sizes", "100"})
	}); err == nil {
		t.Error("-json with -sizes accepted")
	}
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-benchn", "100"})
	}); err == nil {
		t.Error("-benchn without -json accepted")
	}
}
