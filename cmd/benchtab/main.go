// Command benchtab regenerates the reproduction tables E1–E7 recorded in
// EXPERIMENTS.md (one table per claim of the paper; see DESIGN.md §4).
//
// Example:
//
//	benchtab                           # all experiments, default sweep
//	benchtab -experiment E1,E2         # selected experiments
//	benchtab -sizes 1000,10000,100000,1000000 -seeds 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	experiments := fs.String("experiment", "all", "comma-separated experiment ids (E1..E7) or 'all'")
	sizes := fs.String("sizes", "1000,10000,100000", "comma-separated network sizes")
	seeds := fs.Int("seeds", 3, "number of seeds per configuration")
	payload := fs.Int("b", 256, "rumor size in bits")
	workers := fs.Int("workers", 1, "simulator goroutines per round")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := harness.SweepConfig{Opts: harness.Options{PayloadBits: *payload, Workers: *workers}}
	var err error
	cfg.Sizes, err = parseSizes(*sizes)
	if err != nil {
		return err
	}
	for s := 1; s <= *seeds; s++ {
		cfg.Seeds = append(cfg.Seeds, uint64(s))
	}

	ids := harness.ExperimentIDs()
	if *experiments != "all" {
		ids = strings.Split(*experiments, ",")
	}
	for _, id := range ids {
		table, err := harness.RunExperiment(strings.TrimSpace(id), cfg)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("parse size %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
