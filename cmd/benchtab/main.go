// Command benchtab regenerates the reproduction tables E1–E10 recorded in
// EXPERIMENTS.md (one table per claim of the paper, plus the E8 dynamic
// churn sweep and the E9 sim-vs-live comparison; see DESIGN.md §4), and with
// -json benchmarks the hot paths — the static round engine, the dynamic
// scenario path, policy-weighted peer selection, and the membership layer's
// routing-table read and RPC round trip — and emits a machine readable
// BENCH_engine.json so the perf trajectory can be tracked across changes.
//
// Example:
//
//	benchtab                           # all experiments, default sweep
//	benchtab -experiment E1,E2         # selected experiments
//	benchtab -sizes 1000,10000,100000,1000000 -seeds 5
//	benchtab -json                     # engine benchmarks -> BENCH_engine.json
//	benchtab -json -benchn 20000 -out bench.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/cliutil"
	"repro/internal/harness"
	"repro/internal/membership"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	experiments := fs.String("experiment", "all", "comma-separated experiment ids (E1..E10) or 'all'")
	sizes := fs.String("sizes", "1000,10000,100000", "comma-separated network sizes")
	seeds := fs.Int("seeds", 3, "number of seeds per configuration")
	payload := fs.Int("b", 256, "rumor size in bits")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "simulator engine shards per round (results are identical for any value)")
	emitJSON := fs.Bool("json", false, "benchmark the round engine instead of running experiments and write the results as JSON")
	benchN := fs.Int("benchn", 100000, "network size for -json engine benchmarks")
	out := fs.String("out", "BENCH_engine.json", "output path for -json (\"-\" for stdout only)")
	trajectoryRow := fs.String("trajectory-row", "", "read a BENCH_engine.json file and print its dated BENCH_TRAJECTORY.md table row")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trajectoryRow != "" {
		return printTrajectoryRow(*trajectoryRow)
	}

	// The two modes take disjoint flag sets; reject mixed invocations
	// instead of silently ignoring flags.
	var conflicting []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "experiment", "sizes", "seeds", "b":
			if *emitJSON {
				conflicting = append(conflicting, "-"+f.Name)
			}
		case "benchn", "out":
			if !*emitJSON {
				conflicting = append(conflicting, "-"+f.Name)
			}
		}
	})
	if len(conflicting) > 0 {
		if *emitJSON {
			return fmt.Errorf("-json benchmarks the engine and does not take %s", strings.Join(conflicting, ", "))
		}
		return fmt.Errorf("%s only apply with -json", strings.Join(conflicting, ", "))
	}
	if *emitJSON {
		return runEngineBench(*benchN, *workers, *out)
	}

	sizeList, err := cliutil.ParseSizes(*sizes)
	if err != nil {
		return err
	}
	seedList := cliutil.Seeds(*seeds)

	ids := repro.ExperimentIDs()
	if *experiments != "all" {
		ids = strings.Split(*experiments, ",")
	}
	for _, id := range ids {
		table, err := repro.Experiment(strings.TrimSpace(id), sizeList, seedList,
			repro.WithPayloadBits(*payload), repro.WithWorkers(*workers))
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
	}
	return nil
}

// printTrajectoryRow reads a -json output file and prints the markdown row
// BENCH_TRAJECTORY.md tracks: date, commit, then ns/op per benchmark in the
// trajectory's column order. The commit comes from GITHUB_SHA when CI sets
// it, "worktree" otherwise.
func printTrajectoryRow(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Results []engineBenchResult `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	byName := map[string]float64{}
	for _, r := range doc.Results {
		byName[r.Name] = r.NsPerOp
	}
	commit := "worktree"
	if sha := os.Getenv("GITHUB_SHA"); len(sha) >= 7 {
		commit = sha[:7]
	}
	cell := func(name string) string {
		ns, ok := byName[name]
		if !ok {
			return "n/a"
		}
		return fmt.Sprintf("%.0f", ns)
	}
	fmt.Printf("| %s | %s | %s | %s | %s | %s | %s | %s | ci run |\n",
		time.Now().UTC().Format("2006-01-02"), commit,
		cell("EngineRound"), cell("BroadcastCluster2"), cell("ScenarioChurn"),
		cell("PolicySelect"), cell("RoutingLookup"), cell("MembershipRPC"))
	return nil
}

// engineBenchResult is one measured configuration in BENCH_engine.json.
// Rounds is the number of timed engine rounds (EngineRound); Trials is the
// number of averaged end-to-end executions (BroadcastCluster2) — distinct
// fields because one broadcast trial spans many rounds.
type engineBenchResult struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	Workers int     `json:"workers,omitempty"`
	Rounds  int     `json:"rounds,omitempty"`
	Trials  int     `json:"trials,omitempty"`
	NsPerOp float64 `json:"ns_per_op"`
	// Telemetry is the metric snapshot of one extra, untimed, instrumented
	// execution of the same workload (series id -> value), so each row
	// carries its workload shape (rounds, traffic, populations) next to its
	// timing. The timed passes stay un-instrumented, and the raw EngineRound
	// hot loop is never instrumented at all.
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

// telemetrySnapshot flattens a registry into the row's telemetry map.
func telemetrySnapshot(reg *telemetry.Registry) map[string]float64 {
	samples := reg.Snapshot()
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		out[s.ID()] = s.Value
	}
	return out
}

// engineBenchReport is the schema of BENCH_engine.json.
type engineBenchReport struct {
	GoMaxProcs int                 `json:"gomaxprocs"`
	Results    []engineBenchResult `json:"results"`
}

// benchEngineRound times the canonical engine-round workload, shared with
// BenchmarkEngineRound in bench_test.go via harness.EngineRoundDriver so the
// JSON trajectory stays comparable to the Go benchmark numbers. It returns
// the effective shard count actually used, which the engine may clamp below
// the requested value.
func benchEngineRound(n, workers, rounds int) (float64, int, error) {
	step, effective, err := harness.EngineRoundDriver(n, workers)
	if err != nil {
		return 0, 0, err
	}
	for r := 0; r < harness.EngineWarmupRounds; r++ {
		step()
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		step()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds), effective, nil
}

// broadcastTrials is the number of seeds averaged by benchBroadcastCluster2,
// and the number of repetitions averaged by benchScenarioChurn.
const broadcastTrials = 3

// benchBroadcastCluster2 measures one full Cluster2 broadcast (timed passes
// un-instrumented), then runs one extra untimed instrumented execution for
// the row's telemetry snapshot.
func benchBroadcastCluster2(n, workers int) (float64, map[string]float64, error) {
	start := time.Now()
	for seed := uint64(1); seed <= broadcastTrials; seed++ {
		res, err := harness.Run(context.Background(), harness.AlgoCluster2, n, seed, harness.Options{Workers: workers})
		if err != nil {
			return 0, nil, err
		}
		if !res.AllInformed {
			return 0, nil, fmt.Errorf("cluster2 informed only %d/%d", res.Informed, res.Live)
		}
	}
	ns := float64(time.Since(start).Nanoseconds()) / broadcastTrials
	reg := telemetry.NewRegistry()
	if _, err := harness.Run(context.Background(), harness.AlgoCluster2, n, 1, harness.Options{
		Workers:  workers,
		Observer: harness.NewEngineTelemetry(reg, string(harness.AlgoCluster2), "simulator"),
	}); err != nil {
		return 0, nil, err
	}
	return ns, telemetrySnapshot(reg), nil
}

// benchScenarioChurn measures the dynamic path: a full push-pull broadcast
// under periodic churn and per-call loss (harness.ScenarioChurnDriver, the
// same workload as BenchmarkScenarioChurn in bench_test.go). Returns ns per
// scenario execution and the number of simulated rounds per execution.
func benchScenarioChurn(n, workers int) (float64, int, map[string]float64, error) {
	run, rounds := harness.ScenarioChurnDriver(n, workers, nil)
	if err := run(); err != nil { // warm-up, untimed
		return 0, 0, nil, err
	}
	start := time.Now()
	for t := 0; t < broadcastTrials; t++ {
		if err := run(); err != nil {
			return 0, 0, nil, err
		}
	}
	ns := float64(time.Since(start).Nanoseconds()) / broadcastTrials
	reg := telemetry.NewRegistry()
	instrumented, _ := harness.ScenarioChurnDriver(n, workers,
		harness.NewEngineTelemetry(reg, "push-pull", "simulator"))
	if err := instrumented(); err != nil { // untimed telemetry pass
		return 0, 0, nil, err
	}
	return ns, rounds, telemetrySnapshot(reg), nil
}

// benchPolicySelect times one policy-weighted peer selection on an n-node,
// 8-zone WAN topology — the same workload as BenchmarkPolicySelect in
// internal/policy, so the JSON trajectory stays comparable to the Go
// benchmark numbers. The selection hot path is allocation-free (locked by
// TestSelectPeerZeroAlloc); this row tracks its latency.
func benchPolicySelect(n int) (float64, error) {
	tab, err := policy.WanLanTable(n, 8)
	if err != nil {
		return 0, err
	}
	pol := &policy.Policy{
		Rules:   policy.Rules{MaxLatencyDistance: 64, MinCapacity: 32},
		Weights: policy.Weights{SameZone: 2, Capacity: 1, Latency: 0.5},
	}
	sel, err := policy.NewSelector(tab, pol, 0xabcde)
	if err != nil {
		return 0, err
	}
	const ops = 1 << 21
	for i := 0; i < ops/8; i++ { // warm-up, untimed
		sel.SelectPeer(1, i%n)
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		sel.SelectPeer(i/n+1, i%n)
	}
	return float64(time.Since(start).Nanoseconds()) / ops, nil
}

// benchRoutingLookup times Table.Closest over a well-populated routing table
// — the hot read on the FIND_NODE answer path and the seed of every iterative
// lookup (the same workload as BenchmarkRoutingLookup in internal/membership,
// so the JSON trajectory stays comparable to the Go benchmark numbers).
// Returns ns/op and the table population.
func benchRoutingLookup() (float64, int, error) {
	self := membership.ID(0x0123_4567_89ab_cdef)
	tab := membership.NewTable(self, membership.DefaultK)
	for bi := 4; bi < 64; bi++ {
		for lo := uint64(0); lo < 8 && lo < 1<<uint(bi); lo++ {
			id := self ^ (1 << uint(bi)) ^ membership.ID(lo)
			if self.BucketIndex(id) == bi {
				tab.Update(membership.Contact{ID: id, Addr: fmt.Sprintf("10.0.%d.%d:4000", bi, lo)})
			}
		}
	}
	if tab.Len() < 200 {
		return 0, 0, fmt.Errorf("routing bench table too small: %d contacts", tab.Len())
	}
	targets := make([]membership.ID, 256)
	for i := range targets {
		targets[i] = self ^ membership.ID(i*0x9e37_79b9)
	}
	const ops = 1 << 13
	for i := 0; i < ops/8; i++ { // warm-up, untimed
		tab.Closest(targets[i%len(targets)], membership.DefaultK)
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if len(tab.Closest(targets[i%len(targets)], membership.DefaultK)) == 0 {
			return 0, 0, fmt.Errorf("empty lookup")
		}
	}
	return float64(time.Since(start).Nanoseconds()) / ops, tab.Len(), nil
}

// benchMembershipRPC times one full PING/PONG round trip over loopback UDP —
// encode, send, demux, decode, handle, reply, correlate: the unit cost of a
// liveness probe and of each lookup hop (the same workload as
// BenchmarkMembershipRPC in internal/membership).
func benchMembershipRPC() (float64, error) {
	a, err := membership.New(membership.Config{Self: 1, RPCTimeout: time.Second})
	if err != nil {
		return 0, err
	}
	defer a.Close()
	peer, err := membership.New(membership.Config{Self: 2, RPCTimeout: time.Second})
	if err != nil {
		return 0, err
	}
	defer peer.Close()
	addr := peer.Self().Addr
	const ops = 4096
	for i := 0; i < ops/8; i++ { // warm-up, untimed
		if _, err := a.Ping(addr); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := a.Ping(addr); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / ops, nil
}

// runEngineBench benchmarks the round engine and the main algorithm and
// writes the results as JSON, so future changes can track the perf
// trajectory (ns/op for EngineRound and BroadcastCluster2). workers > 0
// benchmarks {1, workers}; workers <= 0 benchmarks the default set
// {1, GOMAXPROCS}.
func runEngineBench(n, workers int, out string) error {
	report := engineBenchReport{GoMaxProcs: runtime.GOMAXPROCS(0)}
	const rounds = 30
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workerCounts := []int{1}
	if workers > 1 {
		workerCounts = append(workerCounts, workers)
	}
	lastEffective := 0
	for _, w := range workerCounts {
		ns, effective, err := benchEngineRound(n, w, rounds)
		if err != nil {
			return err
		}
		if effective == lastEffective {
			continue // the engine clamped this request to a count already measured
		}
		lastEffective = effective
		report.Results = append(report.Results, engineBenchResult{
			Name: "EngineRound", N: n, Workers: effective, Rounds: rounds, NsPerOp: ns,
		})
	}
	ns, tel, err := benchBroadcastCluster2(n, workers)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, engineBenchResult{
		Name: "BroadcastCluster2", N: n, Workers: lastEffective, Trials: broadcastTrials, NsPerOp: ns,
		Telemetry: tel,
	})
	ns, scenarioRounds, tel, err := benchScenarioChurn(n, workers)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, engineBenchResult{
		Name: "ScenarioChurn", N: n, Workers: lastEffective, Rounds: scenarioRounds,
		Trials: broadcastTrials, NsPerOp: ns, Telemetry: tel,
	})
	ns, err = benchPolicySelect(n)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, engineBenchResult{
		Name: "PolicySelect", N: n, NsPerOp: ns,
	})
	ns, tableLen, err := benchRoutingLookup()
	if err != nil {
		return err
	}
	report.Results = append(report.Results, engineBenchResult{
		Name: "RoutingLookup", N: tableLen, NsPerOp: ns,
	})
	ns, err = benchMembershipRPC()
	if err != nil {
		return err
	}
	report.Results = append(report.Results, engineBenchResult{
		Name: "MembershipRPC", N: 2, NsPerOp: ns,
	})

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if out != "-" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchtab: wrote %s\n", out)
	}
	return nil
}
