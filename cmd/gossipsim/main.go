// Command gossipsim runs one gossip broadcast in the random phone call model
// with direct addressing and prints its round-, message- and bit-complexity.
//
// Example:
//
//	gossipsim -algo cluster2 -n 100000 -seed 7
//	gossipsim -algo clusterpushpull -n 100000 -delta 256
//	gossipsim -algo push-pull -n 100000 -fail 10000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro"
	"repro/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	algoName := fs.String("algo", string(repro.AlgoCluster2), "algorithm: "+strings.Join(repro.AlgorithmNames(), ", "))
	n := fs.Int("n", 100000, "number of nodes")
	seed := fs.Uint64("seed", 1, "random seed")
	payload := fs.Int("b", 256, "rumor size in bits")
	delta := fs.Int("delta", 1024, "per-round communication bound (clusterpushpull only)")
	failures := fs.Int("fail", 0, "number of nodes failed by an oblivious adversary")
	failSeed := fs.Uint64("failseed", 42, "adversary seed")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "simulator engine shards per round (results are identical for any value)")
	showPhases := fs.Bool("phases", true, "print the per-phase breakdown")
	topology := fs.String("topology", "", "JSON topology spec attributing the nodes (zones, latency, capacity, reputation)")
	policyPath := fs.String("policy", "", "JSON peer-selection policy over the -topology attributes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	algo, err := repro.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	opts := []repro.Option{
		repro.WithAlgorithm(algo),
		repro.WithSeed(*seed),
		repro.WithPayloadBits(*payload),
		repro.WithDelta(*delta),
		repro.WithWorkers(*workers),
	}
	if *failures > 0 {
		opts = append(opts, repro.WithFailures(*failures, *failSeed))
	}
	opts = append(opts, cliutil.PolicyOptions(*topology, *policyPath)...)
	rep, err := repro.Run(context.Background(), *n, opts...)
	if err != nil {
		return err
	}

	fmt.Printf("algorithm          %s\n", rep.Algorithm)
	cliutil.PrintResult(os.Stdout, rep.Result)
	fmt.Printf("bits/node/payload  %.2f\n", float64(rep.Bits)/float64(rep.N)/float64(*payload))
	if *failures > 0 {
		fmt.Printf("uninformed survivors %d (F = %d)\n", rep.UninformedSurvivors(), *failures)
	}
	if *showPhases {
		cliutil.PrintPhases(os.Stdout, rep.Phases)
	}
	return nil
}
