// Command gossipsim runs one gossip broadcast in the random phone call model
// with direct addressing and prints its round-, message- and bit-complexity.
//
// Example:
//
//	gossipsim -algo cluster2 -n 100000 -seed 7
//	gossipsim -algo clusterpushpull -n 100000 -delta 256
//	gossipsim -algo push-pull -n 100000 -fail 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	algo := fs.String("algo", string(repro.AlgoCluster2), "algorithm: "+strings.Join(algorithmNames(), ", "))
	n := fs.Int("n", 100000, "number of nodes")
	seed := fs.Uint64("seed", 1, "random seed")
	payload := fs.Int("b", 256, "rumor size in bits")
	delta := fs.Int("delta", 1024, "per-round communication bound (clusterpushpull only)")
	failures := fs.Int("fail", 0, "number of nodes failed by an oblivious adversary")
	failSeed := fs.Uint64("failseed", 42, "adversary seed")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "simulator engine shards per round (results are identical for any value)")
	showPhases := fs.Bool("phases", true, "print the per-phase breakdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := repro.Broadcast(repro.Config{
		N:           *n,
		Algorithm:   repro.Algorithm(*algo),
		Seed:        *seed,
		PayloadBits: *payload,
		Delta:       *delta,
		Failures:    *failures,
		FailureSeed: *failSeed,
		Workers:     *workers,
	})
	if err != nil {
		return err
	}

	fmt.Printf("algorithm          %s\n", res.Algorithm)
	fmt.Printf("nodes              %d (live %d)\n", res.N, res.Live)
	fmt.Printf("informed           %d (all informed: %v)\n", res.Informed, res.AllInformed)
	fmt.Printf("rounds             %d (completion at round %d)\n", res.Rounds, res.CompletionRound)
	fmt.Printf("messages           %d payload + %d control (%.2f per node)\n", res.Messages, res.ControlMessages, res.MessagesPerNode)
	fmt.Printf("bits               %d (%.2f per node per payload bit)\n", res.Bits, float64(res.Bits)/float64(res.N)/float64(*payload))
	fmt.Printf("max comms/round Δ  %d\n", res.MaxCommsPerRound)
	if *failures > 0 {
		fmt.Printf("uninformed survivors %d (F = %d)\n", res.UninformedSurvivors(), *failures)
	}
	if *showPhases && len(res.Phases) > 0 {
		fmt.Printf("\n%-28s %8s %12s %14s\n", "phase", "rounds", "messages", "bits")
		for _, p := range res.Phases {
			fmt.Printf("%-28s %8d %12d %14d\n", p.Name, p.Rounds, p.Messages, p.Bits)
		}
	}
	return nil
}

func algorithmNames() []string {
	names := make([]string, 0, len(repro.Algorithms()))
	for _, a := range repro.Algorithms() {
		names = append(names, string(a))
	}
	return names
}
