package main

import (
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestRunSmoke drives one tiny broadcast through the CLI entry point and
// asserts the complexity report markers appear.
func TestRunSmoke(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-algo", "push-pull", "-n", "300", "-seed", "1", "-workers", "2"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{"algorithm", "push-pull", "informed", "all informed: true", "rounds", "max comms/round"} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestRunPhaseTable asserts the per-phase breakdown renders for the paper's
// phase-structured main algorithm.
func TestRunPhaseTable(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-algo", "cluster2", "-n", "400", "-seed", "2"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{"phase", "GrowInitialClusters", "UnclusteredNodesPull"} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestRunRejectsBadInput pins the error paths: unknown algorithm and an
// undersized network must return errors, not panic or succeed.
func TestRunRejectsBadInput(t *testing.T) {
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-algo", "no-such-algo", "-n", "100"})
	}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-n", "1"})
	}); err == nil {
		t.Error("single-node network accepted")
	}
}
