package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestRunSmoke drives one tiny broadcast through the CLI entry point and
// asserts the complexity report markers appear.
func TestRunSmoke(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-algo", "push-pull", "-n", "300", "-seed", "1", "-workers", "2"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{"algorithm", "push-pull", "informed", "all informed: true", "rounds", "max comms/round"} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestRunPhaseTable asserts the per-phase breakdown renders for the paper's
// phase-structured main algorithm.
func TestRunPhaseTable(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-algo", "cluster2", "-n", "400", "-seed", "2"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, marker := range []string{"phase", "GrowInitialClusters", "UnclusteredNodesPull"} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestRunRejectsBadInput pins the error paths: unknown algorithm and an
// undersized network must return errors, not panic or succeed.
func TestRunRejectsBadInput(t *testing.T) {
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-algo", "no-such-algo", "-n", "100"})
	}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-n", "1"})
	}); err == nil {
		t.Error("single-node network accepted")
	}
}

// TestRunTopologyPolicy drives a zoned, policy-biased broadcast through the
// -topology/-policy flags and pins their error paths.
func TestRunTopologyPolicy(t *testing.T) {
	dir := t.TempDir()
	topoPath := filepath.Join(dir, "topo.json")
	polPath := filepath.Join(dir, "policy.json")
	if err := os.WriteFile(topoPath, []byte(`{"generator":"zones","zones":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(polPath, []byte(`{"weights":{"same_zone":3}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-algo", "cluster2", "-n", "400", "-seed", "2",
			"-topology", topoPath, "-policy", polPath})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "all informed: true") {
		t.Errorf("policy-driven broadcast did not complete:\n%s", out)
	}

	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-n", "400", "-policy", polPath})
	}); err == nil {
		t.Error("policy without topology accepted")
	}
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-n", "400", "-topology", "/nonexistent/topo.json"})
	}); err == nil {
		t.Error("nonexistent topology accepted")
	}
	if _, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-n", "400", "-topology", polPath})
	}); err == nil {
		t.Error("policy JSON accepted as a topology")
	}
}
