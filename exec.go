package repro

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/policy"
	"repro/internal/run"
	"repro/internal/scenario"
)

// Run executes one gossip workload over n nodes, configured by functional
// options, and returns the unified Report. It is the single composable entry
// point over the repository's three engines:
//
//   - OnSimulator (the default): the exact sharded phone-call simulator.
//   - OnLockStep: every node as its own goroutine exchanging wire frames in
//     barrier lock-step — results bit-identical to the simulator.
//   - OnFreeRunning: local round clocks with bounded skew, convergence
//     detected by a completion monitor.
//
// The workload follows from the options: a closed broadcast algorithm by
// default, the steppable multi-rumor driver when the timeline injects rumors
// (WithRumors, WithTimeline, WithScenarioSpec). Cancellation and deadlines
// on ctx stop all three engines promptly between rounds, returning ctx's
// error. Invalid or contradictory options are rejected before anything runs,
// with errors satisfying errors.Is(err, ErrInvalidConfig).
//
// A scenario spec (WithScenarioSpec / WithScenarioFile) fixes its own
// network size; pass n = 0 to adopt it, or the same value to confirm it.
// Option order is first-wins only for errors — later options otherwise
// override earlier ones, so CLI flags can be layered over a spec.
func Run(ctx context.Context, n int, opts ...Option) (Report, error) {
	s := settings{}
	for _, o := range opts {
		if o.apply != nil {
			o.apply(&s)
		}
	}
	if s.err != nil {
		return Report{}, s.err
	}
	if s.specN > 0 {
		if n > 0 && n != s.specN {
			return Report{}, fmt.Errorf("%w: n = %d conflicts with the scenario spec's n = %d (the spec's event node indexes are relative to its own size)",
				ErrInvalidConfig, n, s.specN)
		}
		n = s.specN
	}
	s.spec.N = n
	if s.topoSpec != nil {
		tab, err := s.topoSpec.Build(n)
		if err != nil {
			return Report{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		s.spec.Topology = tab
	}
	for _, req := range s.adversaries {
		ev, err := CorruptAt{
			At:       1,
			Nodes:    PickRandomNodes(n, req.count, req.seed),
			Behavior: req.behavior,
			Seed:     req.seed,
		}.event()
		if err != nil {
			return Report{}, err
		}
		s.spec.Events = append(s.spec.Events, ev)
	}
	out, err := run.Execute(ctx, s.spec)
	if err != nil {
		return Report{}, err
	}
	return fromOutcome(out), nil
}

// settings is the mutable state the options build up.
type settings struct {
	spec        run.Spec
	specN       int                  // network size fixed by a scenario spec (0: none)
	adversaries []adversaryReq       // WithAdversaries requests, resolved once n is known
	topoSpec    *policy.TopologySpec // WithTopologyFile spec, built once n is known
	err         error                // first option error
}

// adversaryReq is one WithAdversaries request. The node choice needs the
// network size, which Run only knows after all options applied, so the
// request is queued and expanded into a CorruptAt there.
type adversaryReq struct {
	behavior Adversary
	count    int
	seed     uint64
}

// fail records the first option error.
func (s *settings) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Option configures one aspect of a Run. Options are applied in order; the
// zero Option is a no-op.
type Option struct {
	apply func(*settings)
}

// WithAlgorithm selects the protocol. Closed broadcast algorithms (the
// default, AlgoCluster2) run on the simulator and lock-step engines; the
// steppable protocols (AlgoPush, AlgoPull, AlgoPushPull) drive multi-rumor
// timelines and the free-running engine.
func WithAlgorithm(a Algorithm) Option {
	return Option{func(s *settings) { s.spec.Algorithm = string(a) }}
}

// WithSeed makes the execution reproducible: identical options and seeds
// give identical results on the simulator and lock-step engines.
func WithSeed(seed uint64) Option {
	return Option{func(s *settings) { s.spec.Seed = seed }}
}

// WithWorkers sets the simulator's engine shard count (default: GOMAXPROCS).
// Results are bit-identical for any value.
func WithWorkers(workers int) Option {
	return Option{func(s *settings) { s.spec.Workers = workers }}
}

// WithDelta bounds per-round communications for AlgoClusterPushPull
// (default 1024, minimum MinDelta).
func WithDelta(delta int) Option {
	return Option{func(s *settings) { s.spec.Delta = delta }}
}

// WithPayloadBits sets the rumor size b in bits (default 256).
func WithPayloadBits(bits int) Option {
	return Option{func(s *settings) { s.spec.PayloadBits = bits }}
}

// WithFailures fails count nodes chosen by the oblivious random adversary
// driven by seed — before round 1, or at the start of a later round when
// combined with WithFailureRound.
func WithFailures(count int, seed uint64) Option {
	return Option{func(s *settings) { s.spec.Failures = count; s.spec.FailureSeed = seed }}
}

// WithFailureRound defers the WithFailures adversary to a timed crash wave
// striking at the start of the given round (> 1) — mid-execution churn
// instead of the paper's start-time failures.
func WithFailureRound(round int) Option {
	return Option{func(s *settings) { s.spec.FailureRound = round }}
}

// WithLoss drops every call independently with the given probability from
// round 1 on (oblivious per-call loss, charged per the live-participant
// rule); seed drives the drop decisions independently of the execution seed.
func WithLoss(rate float64, seed uint64) Option {
	return Option{func(s *settings) { s.spec.LossRate = rate; s.spec.LossSeed = seed }}
}

// WithTimeline appends events to the execution's dynamic-network timeline:
// crash waves, rejoins, loss changes and rumor injections applied between
// rounds while the protocol executes. A timeline that injects at least one
// rumor runs the steppable multi-rumor driver and needs WithRounds.
func WithTimeline(events ...TimelineEvent) Option {
	return Option{func(s *settings) {
		for _, ev := range events {
			if ev == nil {
				s.fail(fmt.Errorf("%w: nil timeline event", ErrInvalidConfig))
				return
			}
			internal, err := ev.event()
			if err != nil {
				s.fail(err)
				return
			}
			s.spec.Events = append(s.spec.Events, internal)
		}
	}}
}

// WithRumors injects the given rumors — shorthand for WithTimeline with only
// InjectRumor events. At least one rumor switches the execution to the
// multi-rumor driver.
func WithRumors(rumors ...InjectRumor) Option {
	events := make([]TimelineEvent, 0, len(rumors))
	for _, r := range rumors {
		events = append(events, r)
	}
	return WithTimeline(events...)
}

// WithAdversaries corrupts count nodes, chosen by the oblivious random
// selection driven by seed, with the given Byzantine behavior from round 1
// on — the corruption analogue of WithFailures. The same seed drives the
// behavior's misbehavior stream. For scheduled, targeted or mixed
// corruption (an eclipse with a victim set, waves of liars), build CorruptAt
// events with WithTimeline or Infiltrate instead.
func WithAdversaries(behavior Adversary, count int, seed uint64) Option {
	return Option{func(s *settings) {
		if count <= 0 {
			s.fail(fmt.Errorf("%w: WithAdversaries needs a positive count (got %d)", ErrInvalidConfig, count))
			return
		}
		s.adversaries = append(s.adversaries, adversaryReq{behavior: behavior, count: count, seed: seed})
	}}
}

// WithRounds sets the explicit round budget for multi-rumor timelines and
// the free-running engine (closed broadcast algorithms terminate on their
// own and ignore it).
func WithRounds(rounds int) Option {
	return Option{func(s *settings) { s.spec.Rounds = rounds }}
}

// WithRumorStream puts a free-running run (OnFreeRunning) in continuous
// rumor-stream mode: instead of a timeline seeding rumors, the runtime's
// monitor injects total rumors — rate per frontier round (<= 0: 1), each at
// a live node — through a bounded window of at most maxInFlight concurrently
// active rumors (<= 0: min(total, 1024)). Injection stalls while the window
// is full (Report.InjectionStalls counts the backpressure) and converged
// rumors are garbage-collected to recycle window slots, so total may vastly
// exceed the window. A stream replaces InjectRumor events and uses the
// steppable protocols; the run ends when every rumor converged (or the
// round budget runs out).
func WithRumorStream(rate float64, total, maxInFlight int) Option {
	return Option{func(s *settings) {
		s.spec.StreamRate = rate
		s.spec.StreamTotal = total
		s.spec.MaxInFlight = maxInFlight
	}}
}

// WithMaxInFlight bounds the concurrently active rumors of the scalable
// rumor-set layer: on the simulator it forces a rumor-injecting timeline
// onto the wide rumor-set path with the given window (IDs >= 64 select wide
// on their own, sizing the window to the distinct rumor count); on the
// free-running engine it is the stream window, as set by WithRumorStream's
// third argument.
func WithMaxInFlight(window int) Option {
	return Option{func(s *settings) { s.spec.MaxInFlight = window }}
}

// WithScenarioSpec configures the run from a JSON scenario spec (the format
// of cmd/scenario and internal/scenario): network size, round budget,
// algorithm, seed, payload size, workers, and the full event timeline
// including generators. The spec fixes the network size — pass n = 0 to Run
// to adopt it. Later options override the spec's scalar fields.
func WithScenarioSpec(data []byte) Option {
	return Option{func(s *settings) {
		sp, err := scenario.ParseSpec(data)
		if err != nil {
			s.fail(fmt.Errorf("%w: %v", ErrInvalidConfig, err))
			return
		}
		s.applySpec(sp)
	}}
}

// WithScenarioFile is WithScenarioSpec reading the JSON spec from a file.
func WithScenarioFile(path string) Option {
	return Option{func(s *settings) {
		data, err := os.ReadFile(path)
		if err != nil {
			s.fail(fmt.Errorf("%w: scenario spec: %v", ErrInvalidConfig, err))
			return
		}
		sp, err := scenario.ParseSpec(data)
		if err != nil {
			s.fail(fmt.Errorf("%w: %v", ErrInvalidConfig, err))
			return
		}
		s.applySpec(sp)
	}}
}

// applySpec expands a parsed scenario spec into the settings.
func (s *settings) applySpec(sp scenario.Spec) {
	sc, cfg, err := sp.Build()
	if err != nil {
		s.fail(fmt.Errorf("%w: %v", ErrInvalidConfig, err))
		return
	}
	s.specN = sc.N
	s.spec.Rounds = sc.Rounds
	s.spec.Algorithm = string(sc.Algorithm)
	s.spec.ScenarioName = sc.Name
	s.spec.Events = append(s.spec.Events, sc.Events...)
	s.spec.MaxInFlight = sc.MaxInFlight
	s.spec.Seed = cfg.Seed
	s.spec.PayloadBits = cfg.PayloadBits
	s.spec.Workers = cfg.Workers
}

// RoundInfo is one executed round as streamed to a WithObserver callback:
// the engine's per-round traffic report plus the live population when the
// round ended. On the free-running engine there is no global round; the
// observer streams frontier advances instead (Round is the frontier, the
// traffic fields are zero).
type RoundInfo struct {
	Round    int
	Live     int
	Messages int64
	Bits     int64
	MaxComms int
}

// Observer receives per-round statistics while a run executes. It is
// invoked from the engine's coordinator goroutine (or the free-running
// monitor) — it must be fast and must not call back into the run.
type Observer func(RoundInfo)

// WithObserver streams per-round statistics to obs while the run executes.
// Results and metrics are unchanged by observation.
func WithObserver(obs Observer) Option {
	return Option{func(s *settings) {
		if obs == nil {
			s.spec.Observer = nil
			return
		}
		s.spec.Observer = func(st run.RoundStats) { obs(RoundInfo(st)) }
	}}
}

// Transport selects the live engines' frame transport.
type Transport string

// The transports: an in-process channel mesh (the default, supports
// deterministic frame loss and link delay) and loopback UDP sockets
// (free-running only).
const (
	TransportChannel Transport = "chan"
	TransportUDP     Transport = "udp"
)

// OnSimulator runs the workload on the sharded simulator engine — the
// default.
func OnSimulator() Option {
	return Option{func(s *settings) { s.spec.Engine = run.EngineSimulator; s.spec.Transport = "" }}
}

// OnLockStep runs the workload with every node as its own goroutine
// exchanging wire-encoded frames over the transport in barrier-synchronized
// lock-step. Results are bit-identical to the simulator (the internal/live
// conformance guarantee); churn, loss and timelines apply unchanged. The
// empty transport selects TransportChannel.
func OnLockStep(t Transport) Option {
	return Option{func(s *settings) {
		s.spec.Engine = run.EngineLockStep
		s.spec.Transport = string(t)
	}}
}

// OnFreeRunning runs the workload on the free-running live runtime: local
// round clocks bounded by skew (<= 0: default 3), a per-node round budget
// (<= 0: derived from n), convergence detected by the completion monitor,
// timeline events fired as the round frontier passes them. Free-running
// workloads use the steppable protocols (default AlgoPushPull).
func OnFreeRunning(skew, budget int) Option {
	return Option{func(s *settings) {
		s.spec.Engine = run.EngineFreeRunning
		if skew > 0 {
			s.spec.MaxSkew = skew
		}
		if budget > 0 {
			s.spec.Rounds = budget
		}
	}}
}

// WithTransport selects the live transport without changing the engine
// (useful when layering CLI flags over OnFreeRunning).
func WithTransport(t Transport) Option {
	return Option{func(s *settings) { s.spec.Transport = string(t) }}
}

// WithFrameLoss drops every transport frame independently with the given
// probability on the free-running channel transport; seed drives the
// deterministic drop injection. Distinct from WithLoss, which is the
// model's oblivious per-call loss on the simulated engines.
func WithFrameLoss(rate float64, seed uint64) Option {
	return Option{func(s *settings) { s.spec.Drop = rate; s.spec.DropSeed = seed }}
}

// WithLinkDelay delays every channel-mesh delivery by latency plus a random
// share of jitter (free-running engine only).
func WithLinkDelay(latency, jitter time.Duration) Option {
	return Option{func(s *settings) { s.spec.Latency = latency; s.spec.Jitter = jitter }}
}

// RumorCount is a per-rumor live-informed count inside a scenario phase.
type RumorCount struct {
	Rumor        int
	LiveInformed int
}

// ScenarioPhase summarizes the rounds between two timeline events of a
// multi-rumor run: the traffic, the live population, and how far every
// rumor had spread when the phase ended.
type ScenarioPhase struct {
	// FromRound..ToRound is the inclusive round span of the phase.
	FromRound, ToRound int
	// Events describes the timeline events that opened the phase.
	Events []string
	// Live is the live node count during the phase.
	Live int
	// Messages counts payload and control messages sent within the phase;
	// Bits is their total size; MaxComms is the phase's Δ.
	Messages int64
	Bits     int64
	MaxComms int
	// Informed holds, per registered rumor, the live informed count at the
	// end of the phase.
	Informed []RumorCount
}

// RumorOutcome is the final state of one rumor of a multi-rumor run.
type RumorOutcome struct {
	Rumor int
	// InjectRound is the round at which the rumor was first injected.
	InjectRound int
	// LiveInformed and LiveFraction report how many live nodes held the
	// rumor when the budget ran out.
	LiveInformed int
	LiveFraction float64
	// CompletionRound is the first round at whose end every live node held
	// the rumor (0 if that never happened within the budget).
	CompletionRound int
}

// Report is the unified outcome of a Run: the broadcast-style Result plus
// whatever workload- and engine-specific extras the execution produced.
type Report struct {
	Result

	// Engine names the substrate that executed the run: "simulator",
	// "lock-step" or "free-running".
	Engine string

	// Scenario, Rumors and ScenarioPhases are filled by multi-rumor runs:
	// the scenario's name, the final per-rumor outcomes (ordered by rumor
	// ID) and the per-phase trace. For them, Result.Informed counts live
	// nodes holding the worst-spread rumor and Result.CompletionRound is the
	// last rumor's completion (0 unless every rumor completed).
	Scenario       string
	Rumors         []RumorOutcome
	ScenarioPhases []ScenarioPhase

	// Free-running extras: transport-level frame drops, timeline events
	// that never fired (scheduled past the final frontier) or could not be
	// honored by the transport, and the wall-clock execution time.
	Drops         int64
	UnfiredEvents int
	IgnoredEvents int
	Wall          time.Duration

	// SendFailures counts sends the OS refused (free-running UDP transport
	// only) — loss the transport itself produced, as opposed to injected
	// frame drops. NodeSendFailures breaks the count down by sending node
	// and is nil when nothing failed.
	SendFailures     int64
	NodeSendFailures map[int]int64

	// Rumor-set extras (wide simulator runs and free-running streams).
	// LostInjects counts injections at failed nodes whose rumor never reached
	// a live node; RumorsExpired counts converged rumors the GC retired to
	// recycle window slots. The remaining fields are stream-only
	// (WithRumorStream): lifetime injection/convergence totals, the rumors
	// still active when the run stopped (0 when the stream drained), and how
	// many monitor ticks injection spent stalled on a full window — the
	// backpressure signal.
	LostInjects     int64
	RumorsInjected  int64
	RumorsConverged int64
	RumorsExpired   int64
	RumorsActive    int
	InjectionStalls int64

	snapshot []MetricSample
}

// Snapshot returns the WithTelemetry registry's state at the moment the run
// finished, in deterministic order; nil when the run collected no telemetry.
func (r Report) Snapshot() []MetricSample { return r.snapshot }

// fromOutcome maps the internal outcome onto the public Report.
func fromOutcome(out run.Outcome) Report {
	rep := Report{
		Result: Result{
			Algorithm:        out.Algorithm,
			N:                out.N,
			Seed:             out.Seed,
			Rounds:           out.Rounds,
			CompletionRound:  out.CompletionRound,
			Messages:         out.Messages,
			ControlMessages:  out.ControlMessages,
			Bits:             out.Bits,
			MessagesPerNode:  out.MessagesPerNode,
			MaxCommsPerRound: out.MaxCommsPerRound,
			Live:             out.Live,
			Informed:         out.Informed,
			AllInformed:      out.AllInformed,
		},
		Engine:           out.Engine.String(),
		Scenario:         out.Scenario,
		Drops:            out.Drops,
		UnfiredEvents:    out.UnfiredEvents,
		IgnoredEvents:    out.IgnoredEvents,
		Wall:             out.Wall,
		SendFailures:     out.SendFailures,
		NodeSendFailures: out.NodeSendFailures,
		LostInjects:      out.LostInjects,
		RumorsInjected:   out.RumorsInjected,
		RumorsConverged:  out.RumorsConverged,
		RumorsExpired:    out.RumorsExpired,
		RumorsActive:     out.RumorsActive,
		InjectionStalls:  out.InjectionStalls,
		snapshot:         publicSamples(out.Telemetry),
	}
	for _, p := range out.Result.Phases {
		rep.Result.Phases = append(rep.Result.Phases, Phase(p))
	}
	for _, ro := range out.Rumors {
		rep.Rumors = append(rep.Rumors, RumorOutcome{
			Rumor:           int(ro.Rumor),
			InjectRound:     ro.InjectRound,
			LiveInformed:    ro.LiveInformed,
			LiveFraction:    ro.LiveFraction,
			CompletionRound: ro.CompletionRound,
		})
	}
	for _, ph := range out.ScenarioPhases {
		p := ScenarioPhase{
			FromRound: ph.FromRound,
			ToRound:   ph.ToRound,
			Events:    ph.Events,
			Live:      ph.Live,
			Messages:  ph.Messages,
			Bits:      ph.Bits,
			MaxComms:  ph.MaxComms,
		}
		for _, rc := range ph.Informed {
			p.Informed = append(p.Informed, RumorCount{Rumor: int(rc.Rumor), LiveInformed: rc.LiveInformed})
		}
		rep.ScenarioPhases = append(rep.ScenarioPhases, p)
	}
	return rep
}
