package repro_test

// Runnable documentation for the unified execution API. These examples run
// in CI (`go test -run Example ./...`) with deterministic output — the
// engines are bit-reproducible from (config, seed) for any worker count.

import (
	"context"
	"fmt"

	"repro"
)

func ExampleBroadcast() {
	res, err := repro.Broadcast(repro.Config{N: 2000, Algorithm: repro.AlgoPushPull, Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.AllInformed, res.CompletionRound)
	// Output: true 10
}

func ExampleRun() {
	rep, err := repro.Run(context.Background(), 2000,
		repro.WithAlgorithm(repro.AlgoPushPull),
		repro.WithSeed(3),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Engine, rep.AllInformed, rep.CompletionRound)
	// Output: simulator true 10
}

func ExampleRun_observer() {
	rounds := 0
	rep, err := repro.Run(context.Background(), 1000,
		repro.WithAlgorithm(repro.AlgoCluster2),
		repro.WithSeed(1),
		repro.WithObserver(func(r repro.RoundInfo) { rounds++ }),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(rounds == rep.Rounds, rep.AllInformed)
	// Output: true true
}

func ExampleRun_lockStep() {
	// The lock-step engine runs every node as its own goroutine and is
	// bit-identical to the simulator.
	sim, err := repro.Run(context.Background(), 500,
		repro.WithAlgorithm(repro.AlgoCluster2), repro.WithSeed(2))
	if err != nil {
		panic(err)
	}
	live, err := repro.Run(context.Background(), 500,
		repro.WithAlgorithm(repro.AlgoCluster2), repro.WithSeed(2),
		repro.OnLockStep(repro.TransportChannel))
	if err != nil {
		panic(err)
	}
	fmt.Println(live.Engine, sim.Rounds == live.Rounds && sim.Bits == live.Bits)
	// Output: lock-step true
}

func ExampleRun_multiRumor() {
	// Injecting rumors switches to the steppable multi-rumor driver: two
	// rumors, a mid-run crash wave, per-phase tracing.
	rep, err := repro.Run(context.Background(), 1000,
		repro.WithAlgorithm(repro.AlgoPushPull),
		repro.WithSeed(5),
		repro.WithRounds(40),
		repro.WithRumors(
			repro.InjectRumor{At: 1, Node: 0, Rumor: 0},
			repro.InjectRumor{At: 6, Node: 9, Rumor: 1},
		),
		repro.WithTimeline(repro.CrashAt{At: 10, Nodes: repro.PickRandomNodes(1000, 100, 7)}),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(rep.Rumors), rep.Live, rep.AllInformed)
	// Output: 2 900 true
}
