package repro

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestBroadcastDefaults(t *testing.T) {
	res, err := Broadcast(Config{N: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != string(AlgoCluster2) {
		t.Fatalf("default algorithm = %s, want cluster2", res.Algorithm)
	}
	if !res.AllInformed {
		t.Fatalf("not all informed: %d/%d", res.Informed, res.Live)
	}
	if len(res.Phases) == 0 {
		t.Fatal("expected phase breakdown")
	}
}

func TestBroadcastRejectsBadConfig(t *testing.T) {
	if _, err := Broadcast(Config{N: 1}); err == nil {
		t.Fatal("N=1 should be rejected")
	}
	if _, err := Broadcast(Config{N: 100, Algorithm: Algorithm("bogus")}); err == nil {
		t.Fatal("unknown algorithm should be rejected")
	}
}

func TestBroadcastEveryAlgorithm(t *testing.T) {
	for _, algo := range Algorithms() {
		res, err := Broadcast(Config{N: 2000, Seed: 2, Algorithm: algo, Delta: 64})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !res.AllInformed {
			t.Fatalf("%s informed %d/%d", algo, res.Informed, res.Live)
		}
	}
}

func TestBroadcastWithFailures(t *testing.T) {
	res, err := Broadcast(Config{N: 10000, Seed: 3, Failures: 1000, FailureSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live != 9000 {
		t.Fatalf("live = %d, want 9000", res.Live)
	}
	if res.UninformedSurvivors() > 50 {
		t.Fatalf("uninformed survivors = %d, want o(F) with F=1000", res.UninformedSurvivors())
	}
}

func TestBroadcastWithTimedFailuresAndLoss(t *testing.T) {
	// A crash wave mid-execution (round 5) instead of before round 0, plus
	// 5% per-call loss: the dynamic-network path through the facade.
	res, err := Broadcast(Config{
		N: 10000, Seed: 3,
		Failures: 1000, FailureSeed: 7, FailureRound: 5,
		LossRate: 0.05, LossSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live != 9000 {
		t.Fatalf("live = %d, want 9000 after the wave", res.Live)
	}
	if res.Informed < 0 || res.Informed > res.Live {
		t.Fatalf("informed = %d out of range [0,%d]", res.Informed, res.Live)
	}
	// Reproducible: the wave and the loss pattern are part of the config.
	again, err := Broadcast(Config{
		N: 10000, Seed: 3,
		Failures: 1000, FailureSeed: 7, FailureRound: 5,
		LossRate: 0.05, LossSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.Informed != res.Informed || again.Rounds != res.Rounds {
		t.Fatalf("timed-failure broadcast not reproducible: %+v vs %+v", res, again)
	}
}

func TestBroadcastDeterministic(t *testing.T) {
	a, err := Broadcast(Config{N: 3000, Seed: 11, Algorithm: AlgoCluster1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Broadcast(Config{N: 3000, Seed: 11, Algorithm: AlgoCluster1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.Bits != b.Bits {
		t.Fatalf("same seed should give identical runs: %+v vs %+v", a, b)
	}
}

func TestLowerBoundHelpers(t *testing.T) {
	if TheoreticalLowerBound(1<<16) <= 0 {
		t.Fatal("theoretical bound should be positive")
	}
	if MinPossibleRounds(10000, 1) < 1 {
		t.Fatal("knowledge-graph bound should be at least 1 round")
	}
	if DeltaLowerBound(1<<20, 1<<10) != 2 {
		t.Fatalf("DeltaLowerBound(2^20, 2^10) = %v, want 2", DeltaLowerBound(1<<20, 1<<10))
	}
	if MinDelta < 2 {
		t.Fatal("MinDelta must be sensible")
	}
}

func TestExperimentTable(t *testing.T) {
	table, err := Experiment("E4", []int{1000, 4000}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if table.ID != "E4" || len(table.Header) == 0 || len(table.Rows) != 2 {
		t.Fatalf("unexpected table shape: %+v", table)
	}
	out := table.Render()
	if !strings.Contains(out, "E4") || !strings.Contains(out, "1000") {
		t.Fatalf("unexpected experiment rendering:\n%s", out)
	}
	data, err := json.Marshal(table)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "E4" || len(decoded.Rows) != 2 {
		t.Fatalf("JSON round-trip lost data: %s", data)
	}
	if _, err := Experiment("E0", nil, nil); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	// The sweep-tunable options are validated like Run's, and options the
	// experiment definitions fix themselves are rejected, not ignored.
	if _, err := Experiment("E4", []int{1000}, []uint64{1}, WithDelta(2)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Delta below minimum accepted by Experiment (err=%v)", err)
	}
	if _, err := Experiment("E4", []int{1000}, []uint64{1}, WithSeed(9)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("non-sweep option silently ignored by Experiment (err=%v)", err)
	}
	if len(ExperimentIDs()) != 11 {
		t.Fatal("want 11 experiment ids")
	}
}

// TestAdversariesAcrossEngines is the cross-engine acceptance check for the
// Byzantine seam: the same corrupt timeline produces a bit-identical Report
// on the simulator and the lock-step runtime, and fires cleanly on the
// free-running runtime.
func TestAdversariesAcrossEngines(t *testing.T) {
	ctx := context.Background()
	const n = 400
	spam := CorruptAt{At: 2, Nodes: PickRandomNodes(n, 40, 7), Behavior: AdversarySpammer, Seed: 9}
	opts := []Option{WithAlgorithm(AlgoCluster2), WithSeed(4), WithTimeline(spam)}

	sim, err := Run(ctx, n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := Run(ctx, n, WithAlgorithm(AlgoCluster2), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if sim.Bits == honest.Bits && sim.Rounds == honest.Rounds {
		t.Fatal("spam timeline left the run untouched — the corruption never fired")
	}

	ls, err := Run(ctx, n, append(append([]Option{}, opts...), OnLockStep(TransportChannel))...)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Engine != "lock-step" {
		t.Fatalf("engine = %q", ls.Engine)
	}
	if !reflect.DeepEqual(sim.Result, ls.Result) {
		t.Fatalf("adversarial run diverged across engines:\nsim:  %+v\nlock: %+v", sim.Result, ls.Result)
	}

	// Free-running: a steppable inject+corrupt timeline must fire every event
	// and still spread the rumor past the liar minority.
	liars := make([]int, 0, 30)
	for _, i := range PickRandomNodes(300, 31, 3) {
		if i != 0 && len(liars) < 30 {
			liars = append(liars, i)
		}
	}
	fr, err := Run(ctx, 300,
		WithAlgorithm(AlgoPushPull), WithSeed(6), OnFreeRunning(0, 0),
		WithTimeline(
			InjectRumor{At: 1, Node: 0, Rumor: 0},
			CorruptAt{At: 2, Nodes: liars, Behavior: AdversaryLiar, Seed: 3},
		))
	if err != nil {
		t.Fatal(err)
	}
	if fr.Engine != "free-running" {
		t.Fatalf("engine = %q", fr.Engine)
	}
	if fr.IgnoredEvents != 0 {
		t.Fatalf("free-running ignored %d timeline events", fr.IgnoredEvents)
	}
	if fr.Informed < 300/2 {
		t.Fatalf("rumor barely spread under the liar minority: informed %d of %d live", fr.Informed, fr.Live)
	}
}

// TestRumorStreamFacade drives the continuous-injection service mode end to
// end through the public facade: WithRumorStream on the free-running engine
// injects, converges and garbage-collects every rumor, and the stream totals
// plus the rumor-set telemetry series surface on the Report.
func TestRumorStreamFacade(t *testing.T) {
	reg := NewMetricsRegistry()
	rep, err := Run(context.Background(), 32,
		WithSeed(5), OnFreeRunning(0, 0),
		WithRumorStream(4, 96, 24),
		WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "free-running" {
		t.Fatalf("engine = %q", rep.Engine)
	}
	if rep.RumorsInjected != 96 || rep.RumorsConverged != 96 || rep.RumorsExpired != 96 {
		t.Fatalf("stream totals off: %+v", rep)
	}
	if rep.RumorsActive != 0 || !rep.AllInformed {
		t.Fatalf("stream did not drain: %+v", rep)
	}
	var converged float64
	for _, s := range rep.Snapshot() {
		if s.Name == "repro_rumors_converged_total" {
			converged = s.Value
		}
	}
	if converged != 96 {
		t.Fatalf("repro_rumors_converged_total = %v, want 96", converged)
	}

	// The wide rumor-set path on the simulator accepts IDs past the bitmask.
	wide, err := Run(context.Background(), 64,
		WithAlgorithm(AlgoPushPull), WithSeed(8), WithRounds(80),
		WithRumors(
			InjectRumor{At: 1, Node: 0, Rumor: 1},
			InjectRumor{At: 2, Node: 3, Rumor: 4096},
		))
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.Rumors) != 2 || !wide.AllInformed {
		t.Fatalf("wide simulator run incomplete: %+v", wide)
	}
	if wide.Rumors[1].Rumor != 4096 {
		t.Fatalf("wide rumor ID lost: %+v", wide.Rumors)
	}
}

// TestWithAdversaries covers the convenience option: happy path,
// reproducibility, and the typed error paths.
func TestWithAdversaries(t *testing.T) {
	ctx := context.Background()
	run := func() Report {
		t.Helper()
		rep, err := Run(ctx, 500,
			WithAlgorithm(AlgoPushPull), WithSeed(8), WithRounds(60),
			WithRumors(InjectRumor{At: 1, Node: 0, Rumor: 0}),
			WithAdversaries(AdversaryStale, 50, 13))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if len(rep.Rumors) != 1 || rep.Rumors[0].LiveInformed == 0 {
		t.Fatalf("adversarial run informed nobody: %+v", rep.Rumors)
	}
	if !reflect.DeepEqual(rep, run()) {
		t.Fatal("WithAdversaries run not reproducible")
	}
	// The option also composes with the closed baselines (no rumor tracker:
	// the stale minority degrades to mute).
	if _, err := Run(ctx, 300, WithAlgorithm(AlgoCluster2), WithSeed(2),
		WithAdversaries(AdversarySpammer, 30, 5)); err != nil {
		t.Fatal(err)
	}

	for name, opts := range map[string][]Option{
		"zero count":       {WithAdversaries(AdversaryLiar, 0, 1)},
		"negative count":   {WithAdversaries(AdversaryLiar, -3, 1)},
		"unknown behavior": {WithAdversaries(Adversary("gremlin"), 5, 1)},
		"unknown behavior in timeline": {WithTimeline(
			CorruptAt{At: 1, Nodes: []int{1}, Behavior: Adversary("x")})},
	} {
		_, err := Run(ctx, 100, opts...)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v is not ErrInvalidConfig", name, err)
		}
	}
}
