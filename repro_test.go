package repro

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestBroadcastDefaults(t *testing.T) {
	res, err := Broadcast(Config{N: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != string(AlgoCluster2) {
		t.Fatalf("default algorithm = %s, want cluster2", res.Algorithm)
	}
	if !res.AllInformed {
		t.Fatalf("not all informed: %d/%d", res.Informed, res.Live)
	}
	if len(res.Phases) == 0 {
		t.Fatal("expected phase breakdown")
	}
}

func TestBroadcastRejectsBadConfig(t *testing.T) {
	if _, err := Broadcast(Config{N: 1}); err == nil {
		t.Fatal("N=1 should be rejected")
	}
	if _, err := Broadcast(Config{N: 100, Algorithm: Algorithm("bogus")}); err == nil {
		t.Fatal("unknown algorithm should be rejected")
	}
}

func TestBroadcastEveryAlgorithm(t *testing.T) {
	for _, algo := range Algorithms() {
		res, err := Broadcast(Config{N: 2000, Seed: 2, Algorithm: algo, Delta: 64})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !res.AllInformed {
			t.Fatalf("%s informed %d/%d", algo, res.Informed, res.Live)
		}
	}
}

func TestBroadcastWithFailures(t *testing.T) {
	res, err := Broadcast(Config{N: 10000, Seed: 3, Failures: 1000, FailureSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live != 9000 {
		t.Fatalf("live = %d, want 9000", res.Live)
	}
	if res.UninformedSurvivors() > 50 {
		t.Fatalf("uninformed survivors = %d, want o(F) with F=1000", res.UninformedSurvivors())
	}
}

func TestBroadcastWithTimedFailuresAndLoss(t *testing.T) {
	// A crash wave mid-execution (round 5) instead of before round 0, plus
	// 5% per-call loss: the dynamic-network path through the facade.
	res, err := Broadcast(Config{
		N: 10000, Seed: 3,
		Failures: 1000, FailureSeed: 7, FailureRound: 5,
		LossRate: 0.05, LossSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live != 9000 {
		t.Fatalf("live = %d, want 9000 after the wave", res.Live)
	}
	if res.Informed < 0 || res.Informed > res.Live {
		t.Fatalf("informed = %d out of range [0,%d]", res.Informed, res.Live)
	}
	// Reproducible: the wave and the loss pattern are part of the config.
	again, err := Broadcast(Config{
		N: 10000, Seed: 3,
		Failures: 1000, FailureSeed: 7, FailureRound: 5,
		LossRate: 0.05, LossSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.Informed != res.Informed || again.Rounds != res.Rounds {
		t.Fatalf("timed-failure broadcast not reproducible: %+v vs %+v", res, again)
	}
}

func TestBroadcastDeterministic(t *testing.T) {
	a, err := Broadcast(Config{N: 3000, Seed: 11, Algorithm: AlgoCluster1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Broadcast(Config{N: 3000, Seed: 11, Algorithm: AlgoCluster1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.Bits != b.Bits {
		t.Fatalf("same seed should give identical runs: %+v vs %+v", a, b)
	}
}

func TestLowerBoundHelpers(t *testing.T) {
	if TheoreticalLowerBound(1<<16) <= 0 {
		t.Fatal("theoretical bound should be positive")
	}
	if MinPossibleRounds(10000, 1) < 1 {
		t.Fatal("knowledge-graph bound should be at least 1 round")
	}
	if DeltaLowerBound(1<<20, 1<<10) != 2 {
		t.Fatalf("DeltaLowerBound(2^20, 2^10) = %v, want 2", DeltaLowerBound(1<<20, 1<<10))
	}
	if MinDelta < 2 {
		t.Fatal("MinDelta must be sensible")
	}
}

func TestExperimentTable(t *testing.T) {
	table, err := Experiment("E4", []int{1000, 4000}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if table.ID != "E4" || len(table.Header) == 0 || len(table.Rows) != 2 {
		t.Fatalf("unexpected table shape: %+v", table)
	}
	out := table.Render()
	if !strings.Contains(out, "E4") || !strings.Contains(out, "1000") {
		t.Fatalf("unexpected experiment rendering:\n%s", out)
	}
	data, err := json.Marshal(table)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "E4" || len(decoded.Rows) != 2 {
		t.Fatalf("JSON round-trip lost data: %s", data)
	}
	if _, err := Experiment("E0", nil, nil); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	// The sweep-tunable options are validated like Run's, and options the
	// experiment definitions fix themselves are rejected, not ignored.
	if _, err := Experiment("E4", []int{1000}, []uint64{1}, WithDelta(2)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Delta below minimum accepted by Experiment (err=%v)", err)
	}
	if _, err := Experiment("E4", []int{1000}, []uint64{1}, WithSeed(9)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("non-sweep option silently ignored by Experiment (err=%v)", err)
	}
	if len(ExperimentIDs()) != 9 {
		t.Fatal("want 9 experiment ids")
	}
}
