# Builds the gossipnode binary — one gossip node per container, discovering
# its peers through the Kademlia-style membership layer (no shared node list,
# no volume mounts; the only cross-container knowledge is the seed's address).
# docker-compose.yml wires five of these into the bootstrap-and-converge
# smoke deployment.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -o /out/gossipnode ./cmd/gossipnode

FROM alpine:3.20
COPY --from=build /out/gossipnode /usr/local/bin/gossipnode
# 4001/udp carries both membership RPCs and gossip frames (one socket, demuxed
# by frame type); 9700/tcp is the optional /metrics endpoint.
EXPOSE 4001/udp 9700/tcp
ENTRYPOINT ["gossipnode"]
