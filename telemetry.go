package repro

import (
	"io"
	"net/http"

	"repro/internal/telemetry"
)

// MetricsRegistry collects a run's metric series: counters, gauges and
// histograms with stable Prometheus-style names (DESIGN.md §11 lists them).
// One registry can be shared across many runs — series accumulate — and
// scraped concurrently while runs execute: every instrument update is a
// single atomic operation on a pre-resolved handle, so collection never
// perturbs results and adds no allocation to the engines' round loops.
// Runs without WithTelemetry install no instrumentation at all.
type MetricsRegistry struct {
	reg *telemetry.Registry
}

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry {
	return &MetricsRegistry{reg: telemetry.NewRegistry()}
}

// MetricSample is one exported time-series value. Histograms appear expanded
// into their cumulative `_bucket{le="..."}`, `_sum` and `_count` series.
type MetricSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Snapshot returns every series in deterministic order (by name, then label
// set). Safe to call while runs execute.
func (m *MetricsRegistry) Snapshot() []MetricSample {
	if m == nil || m.reg == nil {
		return nil
	}
	return publicSamples(m.reg.Snapshot())
}

// publicSamples maps internal samples onto the public shape.
func publicSamples(in []telemetry.Sample) []MetricSample {
	if len(in) == 0 {
		return nil
	}
	out := make([]MetricSample, 0, len(in))
	for _, s := range in {
		ms := MetricSample{Name: s.Name, Value: s.Value}
		if len(s.Labels) > 0 {
			ms.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				ms.Labels[l.Key] = l.Value
			}
		}
		out = append(out, ms)
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric family, then its
// samples in deterministic order.
func (m *MetricsRegistry) WritePrometheus(w io.Writer) error {
	if m == nil || m.reg == nil {
		return nil
	}
	return m.reg.WritePrometheus(w)
}

// Handler returns an http.Handler serving the registry as a Prometheus
// /metrics endpoint.
func (m *MetricsRegistry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
}

// WithTelemetry collects the run's metrics into the registry: per-round
// traffic counters and population gauges labeled {algo,engine}, the
// round-duration histogram, and — on the free-running engine — live
// send-path counters, frontier gauges and per-node UDP send-failure
// counters. The Report's Snapshot method returns the registry state at the
// moment the run finished. Telemetry is observational: results are
// bit-identical with and without it.
func WithTelemetry(m *MetricsRegistry) Option {
	return Option{func(s *settings) {
		if m == nil {
			s.spec.Telemetry = nil
			return
		}
		s.spec.Telemetry = m.reg
	}}
}

// WithTraceWriter streams the execution to w as JSONL (one JSON object per
// line): a "run" header, one "round" record per engine round (or "frontier"
// advances on the free-running engine), the "phase" breakdown, and a final
// "result" record. Decode lines into TraceRecord. Write errors surface from
// Run after the execution completes; writes happen on the engine's
// coordinator goroutine, so w should be buffered or fast.
func WithTraceWriter(w io.Writer) Option {
	return Option{func(s *settings) { s.spec.TraceWriter = w }}
}

// TraceRecord is the decode superset of every JSONL trace record emitted by
// WithTraceWriter. Type discriminates: "run", "round", "frontier", "phase",
// "result". Fields not applicable to a record's type are zero.
type TraceRecord struct {
	Type string `json:"type"`

	// "run" header: the workload about to execute.
	Engine      string `json:"engine,omitempty"`
	Algorithm   string `json:"algorithm,omitempty"`
	N           int    `json:"n,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`
	PayloadBits int    `json:"payload_bits,omitempty"`
	Workers     int    `json:"workers,omitempty"`

	// "round": one barriered engine round. Informed is -1 when the run
	// tracks no rumor (closed broadcast algorithms).
	Round      int   `json:"round,omitempty"`
	Live       int   `json:"live,omitempty"`
	Messages   int64 `json:"messages,omitempty"`
	Bits       int64 `json:"bits,omitempty"`
	MaxComms   int   `json:"max_comms,omitempty"`
	Informed   int   `json:"informed,omitempty"`
	Corrupted  int   `json:"corrupted,omitempty"`
	DurationNs int64 `json:"duration_ns,omitempty"`

	// "frontier": one free-running frontier advance.
	Frontier int `json:"frontier,omitempty"`
	MaxRound int `json:"max_round,omitempty"`

	// "phase": one entry of the closed-algorithm phase breakdown or the
	// scenario driver's event-delimited phase trace.
	Name      string   `json:"name,omitempty"`
	FromRound int      `json:"from_round,omitempty"`
	ToRound   int      `json:"to_round,omitempty"`
	Events    []string `json:"events,omitempty"`

	// "result": the final summary ("rounds" doubles as the run header's
	// explicit budget).
	Rounds          int   `json:"rounds,omitempty"`
	CompletionRound int   `json:"completion_round,omitempty"`
	ControlMessages int64 `json:"control_messages,omitempty"`
	AllInformed     bool  `json:"all_informed,omitempty"`
	Drops           int64 `json:"drops,omitempty"`
	SendFailures    int64 `json:"send_failures,omitempty"`
}
