package repro_test

// Every examples/* walkthrough is built and executed on a small network, so
// a broken example fails `go test ./...` (and CI) instead of rotting
// silently. Each example takes -n precisely so this test — and anyone
// skimming the walkthroughs — can run it cheaply; the defaults keep the
// documented full-size behavior.

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// exampleRuns maps every examples/ directory to the small-n arguments the
// smoke test runs it with. faulttolerance self-asserts the o(F) guarantee
// and needs a size where its timed-wave regime is deterministic-green.
var exampleRuns = map[string][]string{
	"quickstart":     {"-n", "2000"},
	"comparison":     {"-n", "2000"},
	"boundeddelta":   {"-n", "2000"},
	"membership":     {"-n", "2000"},
	"churn":          {"-n", "2000"},
	"faulttolerance": {"-n", "3000"},
	"livegossip":     {"-n", "800"},
	"byzantine":      {"-n", "2000"},
	"zones":          {"-n", "1500"},
}

func TestExamplesBuildAndRun(t *testing.T) {
	dirs, err := filepath.Glob("examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no examples found")
	}
	binDir := t.TempDir()
	for _, mainFile := range dirs {
		name := filepath.Base(filepath.Dir(mainFile))
		t.Run(name, func(t *testing.T) {
			args, ok := exampleRuns[name]
			if !ok {
				t.Fatalf("examples/%s has no smoke-test entry in exampleRuns — add one", name)
			}
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			run := exec.Command(bin, args...)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("run %v: %v\n%s", args, err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
	// The churn example's JSON twin must stay loadable too.
	if _, err := os.Stat(filepath.Join("examples", "churn", "spec.json")); err != nil {
		t.Errorf("examples/churn/spec.json: %v", err)
	}
}
